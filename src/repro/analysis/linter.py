"""Single-pass AST invariant linter for the :mod:`repro` codebase.

The test suite can only spot-check the contracts this reproduction is
built on — exact big-integer accumulation, seeded randomness, the typed
error hierarchy, asyncio task discipline. This module machine-enforces
them on every commit: a dependency-free driver walks each file's
:mod:`ast` once, dispatching every node to the registered rules
(:mod:`repro.analysis.rules`) that declared interest in its type, and
collects :class:`Finding` records.

Design:

* **Rule registry** — rules subclass :class:`Rule`, declare the node
  types they inspect in ``node_types``, and register themselves with
  :func:`register`. The driver builds a ``type -> [rules]`` dispatch
  table so one traversal serves every rule (single pass per file).
* **Context** — rules see a :class:`Context` carrying the file path,
  dotted module name, an import alias table (so ``np.random.random``
  resolves to ``numpy.random.random`` whatever numpy was imported as),
  and the enclosing class/function scope stack.
* **Suppressions** — a finding is silenced by ``# repro: allow[rule]
  -- rationale`` on its line (or on a comment-only line directly
  above). The rationale is mandatory: a bare allow, or one naming an
  unknown rule, is itself reported under the ``bare-allow`` meta rule.
* **Baseline** — :func:`load_baseline`/:func:`baseline_document`
  grandfather existing findings by a line-content hash, so the gate
  "no *new* findings" can be enforced before a tree is fully clean.
"""

from __future__ import annotations

import ast
import hashlib
import io
import json
import re
import tokenize
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Type

from ..exceptions import ParameterError

__all__ = [
    "Analyzer",
    "Context",
    "Finding",
    "Rule",
    "Suppression",
    "all_rules",
    "baseline_document",
    "load_baseline",
    "register",
    "resolve_rules",
]

#: Matches the suppression comment grammar (spelled out in the module
#: docstring above; not repeated here literally or this file would parse
#: its own documentation as a suppression).
_ALLOW_RE = re.compile(
    r"#\s*repro:\s*allow\[(?P<rules>[^\]]*)\]\s*(?:--\s*(?P<rationale>.*\S))?"
)

#: Meta rule id for malformed suppression comments (see :class:`Analyzer`).
BARE_ALLOW = "bare-allow"


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str
    #: The stripped source line, for reports and baseline hashing.
    snippet: str = ""

    def render(self) -> str:
        return "%s:%d:%d: [%s] %s" % (
            self.path,
            self.line,
            self.col,
            self.rule,
            self.message,
        )

    def as_dict(self) -> Dict[str, Any]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "snippet": self.snippet,
        }

    def baseline_key(self) -> str:
        """Stable identity for baseline matching.

        Hashes the *content* of the offending line rather than its
        number, so unrelated edits above a grandfathered finding do not
        un-grandfather it.
        """
        digest = hashlib.sha256(self.snippet.encode("utf-8")).hexdigest()[:16]
        return "%s:%s:%s" % (self.path, self.rule, digest)


@dataclass(frozen=True)
class Suppression:
    """One parsed ``# repro: allow[...]`` comment."""

    line: int
    rules: Tuple[str, ...]
    rationale: str
    standalone: bool  # True when the line holds nothing but the comment


class Context:
    """Per-file state shared by every rule during the single pass."""

    def __init__(self, path: str, module: str, source: str, tree: ast.AST) -> None:
        self.path = path
        self.module = module
        self.source = source
        self.lines = source.splitlines()
        self.tree = tree
        #: Local name -> fully qualified module/object it refers to.
        self.aliases: Dict[str, str] = {}
        #: Enclosing ClassDef/FunctionDef/AsyncFunctionDef names, outermost first.
        self.scope: List[str] = []
        #: Depth of enclosing ``async def`` scopes (0 = synchronous code).
        self.async_depth = 0
        self._findings: List[Finding] = []
        self._collect_aliases(tree)

    # ------------------------------------------------------------- aliases

    def _collect_aliases(self, tree: ast.AST) -> None:
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    self.aliases[alias.asname or alias.name.split(".")[0]] = (
                        alias.name if alias.asname else alias.name.split(".")[0]
                    )
            elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    self.aliases[alias.asname or alias.name] = "%s.%s" % (
                        node.module,
                        alias.name,
                    )

    def dotted_name(self, node: ast.AST) -> Optional[str]:
        """Resolve ``np.random.random`` -> ``numpy.random.random``.

        Returns ``None`` for anything not rooted in a plain name (calls,
        subscripts, attribute chains off expressions).
        """
        parts: List[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        root = self.aliases.get(node.id, node.id)
        parts.append(root)
        return ".".join(reversed(parts))

    # ------------------------------------------------------------ reporting

    def report(self, rule: "Rule", node: ast.AST, message: str) -> None:
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        snippet = self.lines[line - 1].strip() if line <= len(self.lines) else ""
        self._findings.append(
            Finding(rule.name, self.path, line, col, message, snippet)
        )

    @property
    def in_function(self) -> bool:
        return bool(self.scope)

    def scope_name(self) -> str:
        """Dotted enclosing scope, e.g. ``StreamingSum.merge`` ('' at module level)."""
        return ".".join(self.scope)


class Rule:
    """Base class for one invariant check.

    Subclasses set ``name`` (the kebab-case id used in ``--select`` and
    ``allow[...]`` comments), ``summary`` (one line for ``--list-rules``
    and the docs), and ``node_types`` (the AST classes they want to
    see), then implement :meth:`check`.
    """

    name: str = ""
    summary: str = ""
    node_types: Tuple[Type[ast.AST], ...] = ()

    def check(self, node: ast.AST, ctx: Context) -> None:
        raise NotImplementedError("rules must implement check()")


_REGISTRY: Dict[str, Type[Rule]] = {}


def register(rule_class: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the global registry."""
    if not rule_class.name:
        raise ParameterError("rule classes must set a name")
    if rule_class.name in _REGISTRY:
        raise ParameterError("rule %r is already registered" % rule_class.name)
    _REGISTRY[rule_class.name] = rule_class
    return rule_class


def all_rules() -> Dict[str, Type[Rule]]:
    """Registered rules by name (import :mod:`repro.analysis.rules` first)."""
    from . import rules  # noqa: F401  (self-registration side effect)

    return dict(_REGISTRY)


def resolve_rules(
    select: Optional[Sequence[str]] = None,
    ignore: Optional[Sequence[str]] = None,
) -> List[Rule]:
    """Instantiate the selected rule set (all registered rules by default)."""
    registry = all_rules()
    for name in list(select or []) + list(ignore or []):
        if name not in registry and name != BARE_ALLOW:
            raise ParameterError(
                "unknown rule %r; known: %s" % (name, ", ".join(sorted(registry)))
            )
    chosen = select if select else sorted(registry)
    return [registry[name]() for name in chosen if name not in set(ignore or [])]


# ---------------------------------------------------------------- the driver


class _Walker(ast.NodeVisitor):
    """One traversal that feeds every rule and tracks scope state."""

    def __init__(self, rules: Sequence[Rule], ctx: Context) -> None:
        self.ctx = ctx
        self.dispatch: Dict[Type[ast.AST], List[Rule]] = {}
        for rule in rules:
            for node_type in rule.node_types:
                self.dispatch.setdefault(node_type, []).append(rule)

    def visit(self, node: ast.AST) -> None:
        for rule in self.dispatch.get(type(node), ()):
            rule.check(node, self.ctx)
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            self.ctx.scope.append(node.name)
            if isinstance(node, ast.AsyncFunctionDef):
                self.ctx.async_depth += 1
            self.generic_visit(node)
            if isinstance(node, ast.AsyncFunctionDef):
                self.ctx.async_depth -= 1
            self.ctx.scope.pop()
        else:
            self.generic_visit(node)


def parse_suppressions(source: str) -> List[Suppression]:
    """Extract every ``# repro: allow[...]`` comment with its location.

    Uses :mod:`tokenize` so string literals that merely *mention* the
    grammar (this module's docstring, test fixtures) are not misread as
    live suppressions.
    """
    suppressions: List[Suppression] = []
    lines = source.splitlines()
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        comments = [
            (token.start[0], token.string)
            for token in tokens
            if token.type == tokenize.COMMENT
        ]
    except (tokenize.TokenError, IndentationError, SyntaxError):
        comments = []
    for line_number, comment in comments:
        match = _ALLOW_RE.search(comment)
        if match is None:
            continue
        names = tuple(
            part.strip() for part in match.group("rules").split(",") if part.strip()
        )
        rationale = (match.group("rationale") or "").strip()
        text = lines[line_number - 1] if line_number <= len(lines) else ""
        standalone = text.strip().startswith("#")
        suppressions.append(Suppression(line_number, names, rationale, standalone))
    return suppressions


@dataclass
class FileResult:
    """Findings for one analyzed file (after suppression filtering)."""

    path: str
    findings: List[Finding] = field(default_factory=list)
    suppressed: int = 0
    error: Optional[str] = None


class Analyzer:
    """Run a rule set over source files and apply the suppression policy."""

    def __init__(self, rules: Sequence[Rule]) -> None:
        self.rules = list(rules)

    def run_source(
        self, source: str, path: str = "<memory>", module: str = ""
    ) -> FileResult:
        """Analyze one in-memory source blob (the unit tests' entry point)."""
        result = FileResult(path)
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError as exc:
            result.error = "syntax error: %s" % exc
            return result
        ctx = Context(path, module or _module_name(path), source, tree)
        _Walker(self.rules, ctx).visit(tree)
        raw = sorted(ctx._findings, key=lambda f: (f.line, f.col, f.rule))
        suppressions = parse_suppressions(source)
        active = {s.line: s for s in suppressions}
        kept: List[Finding] = []
        for finding in raw:
            covering = _covering_suppression(finding, active, ctx.lines)
            if covering is not None:
                result.suppressed += 1
            else:
                kept.append(finding)
        kept.extend(self._meta_findings(path, suppressions, ctx))
        result.findings = sorted(kept, key=lambda f: (f.line, f.col, f.rule))
        return result

    def run_file(self, path: str) -> FileResult:
        try:
            with open(path, "r", encoding="utf-8") as handle:
                source = handle.read()
        except (OSError, UnicodeDecodeError) as exc:
            result = FileResult(path)
            result.error = "unreadable: %s" % exc
            return result
        return self.run_source(source, path)

    def _meta_findings(
        self, path: str, suppressions: Sequence[Suppression], ctx: Context
    ) -> List[Finding]:
        """Police the suppressions themselves (the ``bare-allow`` meta rule)."""
        known = set(_REGISTRY)
        out: List[Finding] = []
        for suppression in suppressions:
            snippet = (
                ctx.lines[suppression.line - 1].strip()
                if suppression.line <= len(ctx.lines)
                else ""
            )
            if not suppression.rationale:
                out.append(
                    Finding(
                        BARE_ALLOW,
                        path,
                        suppression.line,
                        0,
                        "suppression without a rationale; write "
                        "'# repro: allow[%s] -- <why this is safe>'"
                        % ", ".join(suppression.rules or ("rule",)),
                        snippet,
                    )
                )
            for name in suppression.rules:
                if name not in known and name != BARE_ALLOW:
                    out.append(
                        Finding(
                            BARE_ALLOW,
                            path,
                            suppression.line,
                            0,
                            "suppression names unknown rule %r" % name,
                            snippet,
                        )
                    )
            if not suppression.rules:
                out.append(
                    Finding(
                        BARE_ALLOW,
                        path,
                        suppression.line,
                        0,
                        "suppression lists no rules",
                        snippet,
                    )
                )
        return out


def _covering_suppression(
    finding: Finding,
    by_line: Mapping[int, Suppression],
    lines: Sequence[str],
) -> Optional[Suppression]:
    """The suppression covering ``finding``.

    Either an inline annotation on the finding's own line, or a
    ``# repro: allow[...]`` anywhere in the contiguous comment block
    directly above it (so multi-line rationales stay readable).
    """
    same = by_line.get(finding.line)
    if same is not None and finding.rule in same.rules:
        return same
    line = finding.line - 1
    while line >= 1 and line <= len(lines):
        if not lines[line - 1].strip().startswith("#"):
            break
        candidate = by_line.get(line)
        if (
            candidate is not None
            and candidate.standalone
            and finding.rule in candidate.rules
        ):
            return candidate
        line -= 1
    return None


def _module_name(path: str) -> str:
    """Best-effort dotted module name from a file path."""
    normalized = path.replace("\\", "/")
    for anchor in ("/src/", "src/"):
        index = normalized.find(anchor)
        if index >= 0:
            normalized = normalized[index + len(anchor):]
            break
    if normalized.endswith(".py"):
        normalized = normalized[:-3]
    return normalized.strip("/").replace("/", ".")


# ----------------------------------------------------------------- baseline


def baseline_document(findings: Iterable[Finding]) -> Dict[str, Any]:
    """A JSON-serializable baseline grandfathering ``findings``."""
    keys: Dict[str, int] = {}
    for finding in findings:
        key = finding.baseline_key()
        keys[key] = keys.get(key, 0) + 1
    return {"format": "repro-analysis-baseline", "version": 1, "findings": keys}


def load_baseline(path: str) -> Dict[str, int]:
    """Parse a baseline file into its ``key -> allowed count`` map."""
    with open(path, "r", encoding="utf-8") as handle:
        document = json.load(handle)
    if (
        not isinstance(document, dict)
        or document.get("format") != "repro-analysis-baseline"
        or not isinstance(document.get("findings"), dict)
    ):
        raise ParameterError("%s is not a repro-analysis baseline file" % path)
    return {str(k): int(v) for k, v in document["findings"].items()}


def apply_baseline(
    findings: Sequence[Finding], baseline: Mapping[str, int]
) -> List[Finding]:
    """Drop findings covered by the baseline (counted per identical line)."""
    budget = dict(baseline)
    kept: List[Finding] = []
    for finding in findings:
        key = finding.baseline_key()
        if budget.get(key, 0) > 0:
            budget[key] -= 1
        else:
            kept.append(finding)
    return kept
