"""Analysis tooling: utility metrics, density diagnostics, empirical LDP
auditing — and the static AST invariant linter (``python -m repro.analysis``).
"""

from .audit import AuditResult, audit_mechanism
from .linter import Analyzer, Finding, Rule, all_rules, resolve_rules
from .rules import RULE_NAMES
from .density import (
    EmpiricalDensity,
    GaussianFit,
    empirical_pdf,
    gaussian_fit,
    pdf_overlay,
)
from .metrics import (
    UtilityReport,
    compare_estimates,
    l2_deviation,
    max_abs_deviation,
    mse,
    true_mean,
)

__all__ = [
    "Analyzer",
    "AuditResult",
    "Finding",
    "RULE_NAMES",
    "Rule",
    "all_rules",
    "resolve_rules",
    "EmpiricalDensity",
    "GaussianFit",
    "UtilityReport",
    "audit_mechanism",
    "compare_estimates",
    "empirical_pdf",
    "gaussian_fit",
    "l2_deviation",
    "max_abs_deviation",
    "mse",
    "pdf_overlay",
    "true_mean",
]
