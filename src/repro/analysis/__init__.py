"""Utility metrics, density diagnostics and empirical LDP auditing."""

from .audit import AuditResult, audit_mechanism
from .density import (
    EmpiricalDensity,
    GaussianFit,
    empirical_pdf,
    gaussian_fit,
    pdf_overlay,
)
from .metrics import (
    UtilityReport,
    compare_estimates,
    l2_deviation,
    max_abs_deviation,
    mse,
    true_mean,
)

__all__ = [
    "AuditResult",
    "EmpiricalDensity",
    "GaussianFit",
    "UtilityReport",
    "audit_mechanism",
    "compare_estimates",
    "empirical_pdf",
    "gaussian_fit",
    "l2_deviation",
    "max_abs_deviation",
    "mse",
    "pdf_overlay",
    "true_mean",
]
