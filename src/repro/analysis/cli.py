"""``python -m repro.analysis`` — run the invariant linter.

Exit status: 0 when clean (after baseline subtraction), 1 when findings
remain, 2 on usage errors. Examples::

    python -m repro.analysis src                      # gate the library
    python -m repro.analysis src --format json        # machine-readable
    python -m repro.analysis tests --select broad-except,async-hygiene
    python -m repro.analysis src --write-baseline .repro-analysis.json
    python -m repro.analysis src --baseline .repro-analysis.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional, Sequence

from ..exceptions import ParameterError
from .linter import (
    Analyzer,
    FileResult,
    apply_baseline,
    baseline_document,
    load_baseline,
    resolve_rules,
)
from .reporters import render_json, render_text

__all__ = ["main"]


def _iter_python_files(paths: Sequence[str]) -> List[str]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    out: List[str] = []
    for path in paths:
        if os.path.isdir(path):
            for root, dirs, files in os.walk(path):
                dirs[:] = sorted(
                    d for d in dirs if d not in ("__pycache__", ".git")
                )
                for name in sorted(files):
                    if name.endswith(".py"):
                        out.append(os.path.join(root, name))
        elif path.endswith(".py") or os.path.isfile(path):
            out.append(path)
        else:
            raise ParameterError("no such file or directory: %r" % path)
    return out


def _split_names(value: Optional[str]) -> Optional[List[str]]:
    if value is None:
        return None
    return [part.strip() for part in value.split(",") if part.strip()]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="AST invariant linter enforcing the repro stack's "
        "exactness, RNG, error, asyncio, clock and wire contracts.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to analyze (default: src)",
    )
    parser.add_argument(
        "--select",
        help="comma-separated rule names to run (default: all)",
    )
    parser.add_argument(
        "--ignore",
        help="comma-separated rule names to skip",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--baseline",
        help="baseline file of grandfathered findings to subtract",
    )
    parser.add_argument(
        "--write-baseline",
        metavar="PATH",
        help="write the current findings as a baseline file and exit 0",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        rules = resolve_rules(_split_names(args.select), _split_names(args.ignore))
    except ParameterError as exc:
        parser.error(str(exc))
    if args.list_rules:
        for rule in rules:
            print("%-16s %s" % (rule.name, rule.summary))
        return 0
    try:
        files = _iter_python_files(args.paths)
    except ParameterError as exc:
        parser.error(str(exc))
    analyzer = Analyzer(rules)
    results: List[FileResult] = [analyzer.run_file(path) for path in files]

    if args.write_baseline:
        findings = [f for result in results for f in result.findings]
        with open(args.write_baseline, "w", encoding="utf-8") as handle:
            json.dump(baseline_document(findings), handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(
            "baseline: %d finding(s) grandfathered into %s"
            % (len(findings), args.write_baseline)
        )
        return 0

    if args.baseline:
        try:
            baseline = load_baseline(args.baseline)
        except (OSError, ValueError) as exc:
            parser.error("cannot read baseline %s: %s" % (args.baseline, exc))
        for result in results:
            result.findings = apply_baseline(result.findings, baseline)

    report = render_json(results) if args.format == "json" else render_text(results)
    print(report)
    has_errors = any(result.error for result in results)
    has_findings = any(result.findings for result in results)
    if has_errors:
        return 2
    return 1 if has_findings else 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
