"""Empirical-density diagnostics for validating the CLT framework.

Figures 2 and 3 of the paper overlay the framework's Gaussian pdf on an
empirical pdf estimated from repeated experiments. This module provides
the histogram density estimator, a Gaussian-fit summary, and a
Kolmogorov–Smirnov comparison of an empirical sample against a
:class:`~repro.framework.deviation.DeviationModel`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np
from scipy import stats

from ..exceptions import DimensionError
from ..framework.deviation import DeviationModel


@dataclass(frozen=True)
class EmpiricalDensity:
    """Histogram-based pdf estimate of a sample.

    Attributes
    ----------
    centers:
        Bin midpoints.
    density:
        Estimated pdf value per bin (integrates to 1).
    """

    centers: np.ndarray
    density: np.ndarray

    def evaluate(self, points: np.ndarray) -> np.ndarray:
        """Piecewise-constant pdf lookup (0 outside the histogram range)."""
        pts = np.asarray(points, dtype=np.float64)
        return np.interp(pts, self.centers, self.density, left=0.0, right=0.0)


def empirical_pdf(sample: np.ndarray, bins: int = 40) -> EmpiricalDensity:
    """Estimate the pdf of a one-dimensional sample via histogram."""
    arr = np.asarray(sample, dtype=np.float64).ravel()
    if arr.size < 2:
        raise DimensionError("need at least two observations, got %d" % arr.size)
    density, edges = np.histogram(arr, bins=bins, density=True)
    centers = 0.5 * (edges[:-1] + edges[1:])
    return EmpiricalDensity(centers=centers, density=density)


@dataclass(frozen=True)
class GaussianFit:
    """Comparison of an empirical sample against a framework Gaussian.

    Attributes
    ----------
    sample_mean / sample_std:
        Moments of the empirical deviations.
    model_mean / model_std:
        The framework's ``δ`` and ``σ``.
    ks_statistic / ks_pvalue:
        One-sample Kolmogorov–Smirnov test of the sample against the
        model's Gaussian.
    """

    sample_mean: float
    sample_std: float
    model_mean: float
    model_std: float
    ks_statistic: float
    ks_pvalue: float

    @property
    def mean_error(self) -> float:
        """|sample mean − model mean|."""
        return abs(self.sample_mean - self.model_mean)

    @property
    def std_ratio(self) -> float:
        """sample std / model std (≈ 1 when the framework is accurate)."""
        return self.sample_std / self.model_std


def gaussian_fit(sample: np.ndarray, model: DeviationModel) -> GaussianFit:
    """Score how well ``model`` describes an empirical deviation sample."""
    arr = np.asarray(sample, dtype=np.float64).ravel()
    if arr.size < 2:
        raise DimensionError("need at least two observations, got %d" % arr.size)
    statistic, pvalue = stats.kstest(
        arr, "norm", args=(model.delta, model.sigma)
    )
    return GaussianFit(
        sample_mean=float(arr.mean()),
        sample_std=float(arr.std(ddof=1)),
        model_mean=model.delta,
        model_std=model.sigma,
        ks_statistic=float(statistic),
        ks_pvalue=float(pvalue),
    )


def pdf_overlay(
    sample: np.ndarray, model: DeviationModel, bins: int = 40
) -> Tuple[EmpiricalDensity, np.ndarray]:
    """Return the Fig. 2/3 overlay data: empirical pdf and model pdf.

    The second element is the model pdf evaluated at the histogram bin
    centers, ready to be printed or plotted side by side with the
    empirical density.
    """
    density = empirical_pdf(sample, bins=bins)
    return density, model.pdf(density.centers)
