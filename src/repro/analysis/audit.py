"""Empirical ε-LDP auditing of perturbation mechanisms.

Definition 1 of the paper requires, for every pair of inputs ``t₁, t₂``
and every output, ``Pr[M(t₁) = t*] / Pr[M(t₂) = t*] ≤ e^ε``. The
analytical mechanisms in this library satisfy that by construction; this
module provides the *empirical* check — sample both conditional output
distributions, histogram them on a common grid, and estimate the largest
log-ratio. It serves two purposes:

* a defence-in-depth test for the shipped samplers (a sampler bug that
  violated the privacy budget would not be caught by moment tests — the
  square-wave tail bug in this repo's history distorted moments *and*
  ratios, and this auditor flags such bugs directly);
* a tool for users registering their own mechanisms.

Estimating density ratios from samples is noisy in sparsely populated
bins, so the auditor only scores bins with at least ``min_count`` samples
on both sides and reports the observed maximum together with the number
of bins scored; the statistical slack to allow is the caller's choice
(the tests use a multiplicative 1.15 at 200k samples).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from ..exceptions import DimensionError
from ..mechanisms.base import Mechanism, validate_epsilon
from ..rng import RngLike, ensure_rng


@dataclass(frozen=True)
class AuditResult:
    """Outcome of one pairwise empirical LDP audit.

    Attributes
    ----------
    epsilon:
        The privacy budget audited against.
    max_log_ratio:
        Largest observed |log density ratio| over scored bins (raw, i.e.
        including sampling noise).
    max_adjusted_log_ratio:
        Largest |log ratio| after subtracting a 3-sigma per-bin sampling
        allowance ``3·√(1/c₁ + 1/c₂)`` — the statistically meaningful
        quantity to compare against ε (a correct mechanism's adjusted
        maximum stays below ε with overwhelming probability, while real
        violations survive the subtraction).
    worst_pair:
        The ``(t1, t2)`` input pair achieving the adjusted maximum.
    bins_scored:
        Number of (pair, bin) combinations that had enough mass to score.
    """

    epsilon: float
    max_log_ratio: float
    max_adjusted_log_ratio: float
    worst_pair: Tuple[float, float]
    bins_scored: int

    @property
    def satisfied(self) -> bool:
        """Whether the noise-adjusted ratios stay within ``e^ε``."""
        return self.max_adjusted_log_ratio <= self.epsilon

    def satisfied_with_slack(self, multiplicative_slack: float = 1.15) -> bool:
        """Adjusted-bound check with extra multiplicative headroom."""
        return self.max_adjusted_log_ratio <= self.epsilon * multiplicative_slack


def audit_mechanism(
    mechanism: Mechanism,
    epsilon: float,
    inputs: Optional[Sequence[float]] = None,
    samples: int = 200_000,
    bins: int = 40,
    min_count: int = 50,
    rng: RngLike = None,
) -> AuditResult:
    """Empirically audit ``mechanism`` against its declared ε at ``epsilon``.

    Parameters
    ----------
    mechanism:
        The mechanism under audit.
    epsilon:
        Budget to perturb with (and bound to check).
    inputs:
        Input values to pair up; defaults to the domain endpoints and
        midpoint (the extreme pairs are where the ratio peaks for every
        shipped mechanism).
    samples:
        Draws per input.
    bins:
        Histogram resolution over the pooled output range.
    min_count:
        Minimum per-bin count on *both* sides for the bin to be scored.
    rng:
        Seed or generator.
    """
    eps = validate_epsilon(epsilon)
    if samples < 1000:
        raise DimensionError("need at least 1000 samples, got %d" % samples)
    gen = ensure_rng(rng)
    lo, hi = mechanism.input_domain
    if inputs is None:
        inputs = (lo, 0.5 * (lo + hi), hi)
    values = [float(v) for v in inputs]
    if len(values) < 2:
        raise DimensionError("need at least two inputs to compare")

    draws = {
        v: mechanism.perturb(np.full(samples, v), eps, gen) for v in values
    }
    pooled = np.concatenate(list(draws.values()))
    # Clip the histogram range to the bulk so unbounded mechanisms don't
    # stretch the grid into regions with no mass.
    low, high = np.quantile(pooled, [0.001, 0.999])
    if high <= low:
        high = low + 1e-9
    edges = np.linspace(low, high, bins + 1)
    counts = {
        v: np.histogram(draws[v], bins=edges)[0].astype(np.float64)
        for v in values
    }

    max_log_ratio = 0.0
    max_adjusted = 0.0
    worst_pair = (values[0], values[1])
    bins_scored = 0
    for i, t1 in enumerate(values):
        for t2 in values[i + 1 :]:
            c1, c2 = counts[t1], counts[t2]
            mask = (c1 >= min_count) & (c2 >= min_count)
            bins_scored += int(mask.sum())
            if not mask.any():
                continue
            ratios = np.abs(np.log(c1[mask] / c2[mask]))
            # 3-sigma Poisson allowance on the log ratio of two counts.
            allowance = 3.0 * np.sqrt(1.0 / c1[mask] + 1.0 / c2[mask])
            adjusted = np.maximum(ratios - allowance, 0.0)
            max_log_ratio = max(max_log_ratio, float(ratios.max()))
            local_adjusted = float(adjusted.max())
            if local_adjusted >= max_adjusted:
                max_adjusted = local_adjusted
                worst_pair = (t1, t2)
    return AuditResult(
        epsilon=eps,
        max_log_ratio=max_log_ratio,
        max_adjusted_log_ratio=max_adjusted,
        worst_pair=worst_pair,
        bins_scored=bins_scored,
    )
