"""Human-readable and JSON reporters for analysis runs."""

from __future__ import annotations

import json
from typing import Any, Dict, List, Sequence

from .linter import FileResult, Finding

__all__ = ["render_json", "render_text", "summarize"]


def summarize(results: Sequence[FileResult]) -> Dict[str, Any]:
    """Aggregate counters over one run (used by both reporters)."""
    findings = [finding for result in results for finding in result.findings]
    by_rule: Dict[str, int] = {}
    for finding in findings:
        by_rule[finding.rule] = by_rule.get(finding.rule, 0) + 1
    return {
        "files": len(results),
        "findings": len(findings),
        "suppressed": sum(result.suppressed for result in results),
        "errors": sorted(
            "%s: %s" % (result.path, result.error)
            for result in results
            if result.error
        ),
        "by_rule": dict(sorted(by_rule.items())),
    }


def render_text(results: Sequence[FileResult]) -> str:
    """One ``path:line:col: [rule] message`` line per finding + a summary."""
    lines: List[str] = []
    for result in results:
        if result.error:
            lines.append("%s: ERROR %s" % (result.path, result.error))
        for finding in result.findings:
            lines.append(finding.render())
            if finding.snippet:
                lines.append("    %s" % finding.snippet)
    summary = summarize(results)
    if summary["findings"]:
        per_rule = ", ".join(
            "%s=%d" % pair for pair in summary["by_rule"].items()
        )
        lines.append(
            "%d finding(s) in %d file(s) [%s]; %d suppressed"
            % (
                summary["findings"],
                summary["files"],
                per_rule,
                summary["suppressed"],
            )
        )
    else:
        lines.append(
            "clean: %d file(s), 0 findings, %d suppressed"
            % (summary["files"], summary["suppressed"])
        )
    return "\n".join(lines)


def render_json(results: Sequence[FileResult]) -> str:
    """Machine-readable report: summary plus the full finding list."""
    document = {
        "format": "repro-analysis-report",
        "version": 1,
        "summary": summarize(results),
        "findings": [
            finding.as_dict()
            for result in results
            for finding in result.findings
        ],
    }
    return json.dumps(document, indent=2, sort_keys=False)


def findings_of(results: Sequence[FileResult]) -> List[Finding]:
    """Flatten a run into its finding list."""
    return [finding for result in results for finding in result.findings]
