"""repro.telemetry — dependency-free metrics and structured event logs.

The observability layer of the collection stack. Two halves:

* :mod:`repro.telemetry.metrics` — a :class:`MetricsRegistry` of named
  metric families (:class:`Counter`, :class:`Gauge`, :class:`Histogram`
  with fixed bucket boundaries, and :class:`TimeWeightedGauge`, which
  integrates value·seconds areas between updates so average queue depth
  and busy-fraction/utilization are *exact* over the run, not sampled).
  Label support, an injectable monotonic clock for deterministic tests,
  ``snapshot()`` to a plain dict, and JSON / aligned-text renderers.
* :mod:`repro.telemetry.events` — a structured JSON event log over
  stdlib :mod:`logging`: one JSON object per line (handshake
  accept/reject with reason, frame accept/reject, fold, checkpoint cut,
  sender retry/reconnect, recovery replay), zero cost when no handler
  is attached.

The transport gateway, session servers, storage backends, CLI and
benchmarks all instrument against this package; the gateway also serves
its registry snapshot live over the framed socket protocol (the
``STATS`` control request — see :func:`repro.transport.request_stats`).
"""

from .events import (
    EVENT_LOGGER_NAME,
    JsonEventFormatter,
    disable_json_logs,
    emit,
    enable_json_logs,
    event_logger,
    set_wall_clock,
    timestamp,
)
from .metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricFamily,
    MetricsRegistry,
    TimeWeightedGauge,
)

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "EVENT_LOGGER_NAME",
    "Gauge",
    "Histogram",
    "JsonEventFormatter",
    "MetricFamily",
    "MetricsRegistry",
    "TimeWeightedGauge",
    "disable_json_logs",
    "emit",
    "enable_json_logs",
    "event_logger",
    "set_wall_clock",
    "timestamp",
]
