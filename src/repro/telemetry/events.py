"""Structured JSON event log over stdlib :mod:`logging`.

One event per line, machine-parseable: each record rendered by
:class:`JsonEventFormatter` is a single JSON object with a stable field
order — ``ts`` (wall-clock seconds since the epoch), ``level``,
``logger``, ``event`` (the event name) and then the event's own fields.
Events flow through the ordinary logging tree under the ``repro``
namespace, so applications that already configure logging capture them
for free, and a process with no handler attached pays only an
``isEnabledFor`` check per event.

Event vocabulary across the collection stack (each listed with its
fields beyond the implicit ``ts``/``level``/``logger``/``event``):

========================  =====================================================
event                     fields
========================  =====================================================
``handshake_accepted``    ``sender_id``, ``resume_seq``
``handshake_rejected``    ``reason``, ``detail``
``stats_served``          ``bytes``
``frame_accepted``        ``sender_id``, ``seq``, ``users``, ``shard``
``frame_rejected``        ``reason``, ``sender_id``, ``detail``
``frame_deduped``         ``sender_id``, ``seq``
``fold``                  ``shard``, ``users``, ``seconds``
``fold_failed``           ``shard``, ``error``
``checkpoint_cut``        ``trigger`` (``frames``/``timer``/``final``),
                          ``frames``, ``users``, ``seconds``
``checkpoint_failed``     ``trigger``, ``error``
``sender_connected``      ``sender_id``, ``host``, ``port``, ``resume_seq``
``sender_retry``          ``attempt``, ``attempts``, ``error``
``recovery_replayed``     ``frames``, ``users``, ``senders``
``corrupt_skipped``       ``backend``, ``generation``
========================  =====================================================
"""

from __future__ import annotations

import json
import logging
import sys
import time
from typing import Any, Callable, Optional, TextIO

#: Root of the event-logging namespace; every emitter is a child logger.
EVENT_LOGGER_NAME = "repro"

_EVENT_ATTR = "repro_event"
_FIELDS_ATTR = "repro_fields"


class JsonEventFormatter(logging.Formatter):
    """Render each log record as one JSON object on one line.

    Records emitted through :func:`emit` carry a structured event name
    and field dict; plain records from other loggers degrade gracefully
    to ``{"event": "log", "message": ...}`` so one handler can carry the
    whole tree.
    """

    def format(self, record: logging.LogRecord) -> str:
        document = {
            "ts": round(record.created, 6),
            "level": record.levelname.lower(),
            "logger": record.name,
            "event": getattr(record, _EVENT_ATTR, "log"),
        }
        fields = getattr(record, _FIELDS_ATTR, None)
        if fields:
            document.update(fields)
        else:
            document["message"] = record.getMessage()
        if record.exc_info and record.exc_info[0] is not None:
            document.setdefault("error", str(record.exc_info[1]))
        return json.dumps(document, sort_keys=False, default=str)


def event_logger(component: str) -> logging.Logger:
    """The logger for one component (``repro.<component>``)."""
    return logging.getLogger("%s.%s" % (EVENT_LOGGER_NAME, component))


def emit(
    logger: logging.Logger,
    event: str,
    level: int = logging.INFO,
    **fields: Any,
) -> None:
    """Emit one structured event; a no-op when the level is disabled."""
    if not logger.isEnabledFor(level):
        return
    logger.log(
        level,
        event,
        extra={_EVENT_ATTR: event, _FIELDS_ATTR: fields},
    )


def enable_json_logs(
    stream: Optional[TextIO] = None,
    level: int = logging.INFO,
) -> logging.Handler:
    """Attach a JSON-lines handler to the ``repro`` event tree.

    Idempotent per stream: calling twice against the same stream does
    not stack duplicate handlers. Returns the active handler so callers
    (tests, CLI shutdown paths) can detach it with
    :func:`disable_json_logs` or flush it explicitly.
    """
    target = stream if stream is not None else sys.stderr
    root = logging.getLogger(EVENT_LOGGER_NAME)
    for handler in root.handlers:
        if getattr(handler, "stream", None) is target and isinstance(
            handler.formatter, JsonEventFormatter
        ):
            root.setLevel(min(root.level or level, level))
            return handler
    handler = logging.StreamHandler(target)
    handler.setFormatter(JsonEventFormatter())
    handler.setLevel(level)
    root.addHandler(handler)
    root.setLevel(level)
    return handler


def disable_json_logs(handler: logging.Handler) -> None:
    """Detach a handler previously returned by :func:`enable_json_logs`."""
    logging.getLogger(EVENT_LOGGER_NAME).removeHandler(handler)


#: The process-wide wall-clock source. ``time.time`` by default; tests
#: and replay tooling swap it with :func:`set_wall_clock`. This
#: *reference* (never a direct call) is the single place the library
#: touches the ambient wall clock — the ``wall-clock`` analysis rule
#: keeps every other module on :func:`timestamp` or an injected
#: registry clock.
_wall_clock: Callable[[], float] = time.time


def timestamp() -> float:
    """Wall-clock seconds since the epoch (separate from metric clocks).

    Reads the injectable module clock, so a test can pin event
    timestamps with :func:`set_wall_clock` without monkeypatching
    :mod:`time` globally.
    """
    return _wall_clock()


def set_wall_clock(
    clock: Optional[Callable[[], float]] = None,
) -> Callable[[], float]:
    """Install ``clock`` as the wall-clock source (``None`` restores
    ``time.time``). Returns the clock now in effect."""
    global _wall_clock
    _wall_clock = time.time if clock is None else clock
    return _wall_clock


__all__ = [
    "EVENT_LOGGER_NAME",
    "JsonEventFormatter",
    "disable_json_logs",
    "emit",
    "enable_json_logs",
    "event_logger",
    "set_wall_clock",
    "timestamp",
]
