"""Dependency-free metrics registry: counters, gauges, histograms.

The ops layer of the collection stack. A :class:`MetricsRegistry` owns a
set of named metric *families*; each family carries a declared type, a
help string and an ordered tuple of label names, and resolves concrete
label values to child instruments through :meth:`MetricFamily.labels`.
Everything is plain Python over an injectable monotonic clock, so tests
drive time deterministically and a snapshot is exact, not sampled.

Four instrument types:

* :class:`Counter` — monotonically non-decreasing float (frames
  accepted, bytes received, stall seconds).
* :class:`Gauge` — a value that goes both ways (connections open).
* :class:`Histogram` — fixed bucket boundaries declared up front;
  observations land in the first bucket whose upper bound is >= the
  value, with count/sum/min/max kept exactly (ack latency, fold time).
* :class:`TimeWeightedGauge` — the event-driven queue-theory instrument:
  every update integrates ``value * seconds`` since the previous update,
  so ``mean()`` over the run is the *exact* time-weighted average (mean
  queue depth), and a 0/1-valued gauge's mean is the exact busy
  fraction / utilization. No sampling interval, no aliasing.

``snapshot()`` renders the whole registry to a plain dict (JSON-able as
is); :meth:`MetricsRegistry.render_json` and
:meth:`MetricsRegistry.render_text` are the two serializations the CLI
and the ``STATS`` socket request expose.

Thread-safety: every mutation takes the registry's lock, so instruments
may be shared between the asyncio loop and helper threads (the CLI's
gateway thread, a benchmark harness) without torn updates.
"""

from __future__ import annotations

import json
import math
import threading
import time
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from ..exceptions import TelemetryError

#: Default histogram bucket upper bounds (seconds-flavoured: latencies
#: from sub-millisecond folds to multi-second checkpoints). ``inf`` is
#: always appended implicitly.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
)


def _label_key(label_names: Tuple[str, ...], values: Mapping[str, Any]) -> str:
    """Canonical string key for one child's label values (``a=1,b=x``)."""
    if set(values) != set(label_names):
        raise TelemetryError(
            "metric labelled %s got label values for %s"
            % (list(label_names), sorted(values))
        )
    return ",".join("%s=%s" % (name, values[name]) for name in label_names)


class _Instrument:
    """One concrete time series: a family bound to one label-value set."""

    def __init__(self, family: "MetricFamily") -> None:
        self._family = family
        self._lock = family.registry._lock

    @property
    def _clock(self) -> Callable[[], float]:
        return self._family.registry._clock


class Counter(_Instrument):
    """Monotonically non-decreasing accumulator (float increments allowed)."""

    kind = "counter"

    def __init__(self, family: "MetricFamily") -> None:
        super().__init__(family)
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise TelemetryError(
                "counters only go up; inc(%r) on %r"
                % (amount, self._family.name)
            )
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value

    def snapshot_value(self) -> float:
        return self._value


class Gauge(_Instrument):
    """A value that can move in both directions."""

    kind = "gauge"

    def __init__(self, family: "MetricFamily") -> None:
        super().__init__(family)
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    @property
    def value(self) -> float:
        return self._value

    def snapshot_value(self) -> float:
        return self._value


class TimeWeightedGauge(_Instrument):
    """Gauge whose history integrates ``value * seconds`` between updates.

    The exact-areas instrument of event-driven stats collectors: on every
    :meth:`set`/:meth:`add` the current value's area since the previous
    update is accumulated, so :meth:`mean` is the exact time-weighted
    average over the observation window regardless of update cadence. A
    gauge that is 1 while a worker is busy and 0 while idle has
    ``mean() == busy fraction`` — utilization without a sampler.
    """

    kind = "time_weighted_gauge"

    def __init__(self, family: "MetricFamily") -> None:
        super().__init__(family)
        self._value = 0.0
        self._area = 0.0
        self._max = 0.0
        self._started_at = self._clock()
        self._updated_at = self._started_at

    def _integrate(self, now: float) -> None:
        if now > self._updated_at:
            self._area += self._value * (now - self._updated_at)
            self._updated_at = now

    def set(self, value: float) -> None:
        with self._lock:
            self._integrate(self._clock())
            self._value = float(value)
            if self._value > self._max:
                self._max = self._value

    def add(self, delta: float) -> None:
        with self._lock:
            self._integrate(self._clock())
            self._value += delta
            if self._value > self._max:
                self._max = self._value

    @property
    def value(self) -> float:
        return self._value

    def elapsed(self) -> float:
        """Seconds since this instrument started observing."""
        return self._clock() - self._started_at

    def area(self) -> float:
        """Exact ``value * seconds`` integral up to now."""
        with self._lock:
            self._integrate(self._clock())
            return self._area

    def mean(self) -> float:
        """Exact time-weighted average value over the whole window."""
        with self._lock:
            now = self._clock()
            self._integrate(now)
            window = now - self._started_at
            if window <= 0:
                return 0.0
            return self._area / window

    def snapshot_value(self) -> Dict[str, float]:
        with self._lock:
            now = self._clock()
            self._integrate(now)
            window = now - self._started_at
            return {
                "value": self._value,
                "max": self._max,
                "area": self._area,
                "elapsed_seconds": window,
                "time_weighted_mean": (
                    self._area / window if window > 0 else 0.0
                ),
            }


class Histogram(_Instrument):
    """Fixed-boundary histogram with exact count/sum/min/max.

    Buckets are cumulative-style upper bounds: an observation lands in
    the first bucket whose bound is ``>= value``; anything beyond the
    last declared bound lands in the implicit ``+Inf`` bucket.
    """

    kind = "histogram"

    def __init__(self, family: "MetricFamily") -> None:
        super().__init__(family)
        self._bounds = family.buckets
        self._counts = [0] * (len(self._bounds) + 1)
        self._count = 0
        self._sum = 0.0
        self._min = math.inf
        self._max = -math.inf

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            index = len(self._bounds)
            for i, bound in enumerate(self._bounds):
                if value <= bound:
                    index = i
                    break
            self._counts[index] += 1
            self._count += 1
            self._sum += value
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value

    def time(self) -> "_HistogramTimer":
        """Context manager observing its block's duration in seconds."""
        return _HistogramTimer(self)

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    def mean(self) -> float:
        return self._sum / self._count if self._count else 0.0

    def snapshot_value(self) -> Dict[str, Any]:
        with self._lock:
            buckets = {
                ("%g" % bound): self._counts[i]
                for i, bound in enumerate(self._bounds)
            }
            buckets["+Inf"] = self._counts[-1]
            return {
                "count": self._count,
                "sum": self._sum,
                "mean": self._sum / self._count if self._count else 0.0,
                "min": self._min if self._count else 0.0,
                "max": self._max if self._count else 0.0,
                "buckets": buckets,
            }


class _HistogramTimer:
    def __init__(self, histogram: Histogram) -> None:
        self._histogram = histogram
        self._started = 0.0

    def __enter__(self) -> "_HistogramTimer":
        self._started = self._histogram._clock()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self._histogram.observe(self._histogram._clock() - self._started)


_INSTRUMENTS = {
    "counter": Counter,
    "gauge": Gauge,
    "histogram": Histogram,
    "time_weighted_gauge": TimeWeightedGauge,
}


class MetricFamily:
    """One named metric: a type, a help string, label names, children.

    An *unlabelled* family is its own single child: ``inc``/``set``/
    ``observe``/… called on the family delegate to the child with the
    empty label set, so the common case needs no ``labels()`` call.
    """

    def __init__(
        self,
        registry: "MetricsRegistry",
        name: str,
        kind: str,
        help: str,
        label_names: Tuple[str, ...],
        buckets: Tuple[float, ...],
    ) -> None:
        self.registry = registry
        self.name = name
        self.kind = kind
        self.help = help
        self.label_names = label_names
        self.buckets = buckets
        self._children: Dict[str, _Instrument] = {}

    def labels(self, **values: Any) -> Any:
        """The child instrument for one concrete label-value set."""
        key = _label_key(self.label_names, values)
        child = self._children.get(key)
        if child is None:
            with self.registry._lock:
                child = self._children.get(key)
                if child is None:
                    child = _INSTRUMENTS[self.kind](self)
                    self._children[key] = child
        return child

    def _default_child(self) -> Any:
        if self.label_names:
            raise TelemetryError(
                "metric %r is labelled by %s; call .labels(...) first"
                % (self.name, list(self.label_names))
            )
        return self.labels()

    # Delegates: the unlabelled family is usable directly.
    def inc(self, amount: float = 1.0) -> None:
        self._default_child().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self._default_child().dec(amount)

    def set(self, value: float) -> None:
        self._default_child().set(value)

    def add(self, delta: float) -> None:
        self._default_child().add(delta)

    def observe(self, value: float) -> None:
        self._default_child().observe(value)

    def time(self) -> _HistogramTimer:
        return self._default_child().time()

    @property
    def value(self) -> float:
        return self._default_child().value

    def mean(self) -> float:
        return self._default_child().mean()

    def area(self) -> float:
        return self._default_child().area()

    @property
    def count(self) -> int:
        return self._default_child().count

    def snapshot(self) -> Dict[str, Any]:
        return {
            "type": self.kind,
            "help": self.help,
            "labels": list(self.label_names),
            "values": {
                key: child.snapshot_value()
                for key, child in sorted(self._children.items())
            },
        }


class MetricsRegistry:
    """A process-local set of named metrics over one monotonic clock.

    Registration is idempotent: asking for an already-registered name
    with the same type and labels returns the existing family (so
    library layers can share one registry without coordinating
    creation); asking with a *different* type, labels or buckets raises
    :class:`~repro.exceptions.TelemetryError` — two meanings under one
    name is how dashboards lie.
    """

    def __init__(self, clock: Callable[[], float] = time.monotonic) -> None:
        self._clock = clock
        self._lock = threading.RLock()
        self._families: Dict[str, MetricFamily] = {}

    @property
    def clock(self) -> Callable[[], float]:
        """The monotonic clock every instrument in this registry reads.

        Instrumented code times its own operations with this same clock,
        so a test that injects a fake clock controls both the metric
        areas *and* the measured durations.
        """
        return self._clock

    # -------------------------------------------------------- registration

    def _register(
        self,
        name: str,
        kind: str,
        help: str,
        labels: Sequence[str],
        buckets: Tuple[float, ...] = (),
    ) -> MetricFamily:
        if not name or not isinstance(name, str):
            raise TelemetryError("metric names are non-empty strings, got %r" % (name,))
        label_names = tuple(labels)
        with self._lock:
            family = self._families.get(name)
            if family is not None:
                if (
                    family.kind != kind
                    or family.label_names != label_names
                    or (kind == "histogram" and family.buckets != buckets)
                ):
                    raise TelemetryError(
                        "metric %r is already registered as a %s labelled %s; "
                        "cannot re-register as a %s labelled %s"
                        % (
                            name,
                            family.kind,
                            list(family.label_names),
                            kind,
                            list(label_names),
                        )
                    )
                return family
            family = MetricFamily(self, name, kind, help, label_names, buckets)
            if not label_names:
                # Materialize the single child now: an unlabelled metric
                # reads as an explicit zero in snapshots, not an absence
                # ("no stalls happened" is a fact worth rendering).
                family._default_child()
            self._families[name] = family
            return family

    def counter(
        self, name: str, help: str = "", labels: Sequence[str] = ()
    ) -> MetricFamily:
        """Register (or fetch) a counter family."""
        return self._register(name, "counter", help, labels)

    def gauge(
        self, name: str, help: str = "", labels: Sequence[str] = ()
    ) -> MetricFamily:
        """Register (or fetch) a gauge family."""
        return self._register(name, "gauge", help, labels)

    def histogram(
        self,
        name: str,
        help: str = "",
        labels: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> MetricFamily:
        """Register (or fetch) a fixed-bucket histogram family."""
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise TelemetryError("a histogram needs at least one bucket bound")
        return self._register(name, "histogram", help, labels, bounds)

    def time_weighted_gauge(
        self, name: str, help: str = "", labels: Sequence[str] = ()
    ) -> MetricFamily:
        """Register (or fetch) a time-weighted gauge family."""
        return self._register(name, "time_weighted_gauge", help, labels)

    # ------------------------------------------------------------ snapshot

    def get(self, name: str) -> Optional[MetricFamily]:
        """The family registered under ``name``, or ``None``."""
        return self._families.get(name)

    def __contains__(self, name: str) -> bool:
        return name in self._families

    def snapshot(self) -> Dict[str, Any]:
        """The whole registry as a plain (JSON-able) dict."""
        with self._lock:
            return {
                name: family.snapshot()
                for name, family in sorted(self._families.items())
            }

    def render_json(self, indent: int = 2) -> str:
        """The snapshot as a JSON document (sorted keys, trailing newline)."""
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True) + "\n"

    def render_text(self) -> str:
        """The snapshot as aligned human-readable text, one series per line."""
        rows: List[Tuple[str, str, str]] = []
        for name, family in sorted(self._families.items()):
            shot = family.snapshot()
            for key, value in shot["values"].items():
                series = name if not key else "%s{%s}" % (name, key)
                if family.kind == "histogram":
                    rendered = "count=%d sum=%.6g mean=%.6g" % (
                        value["count"],
                        value["sum"],
                        value["mean"],
                    )
                elif family.kind == "time_weighted_gauge":
                    rendered = "value=%.6g mean=%.6g max=%.6g" % (
                        value["value"],
                        value["time_weighted_mean"],
                        value["max"],
                    )
                else:
                    rendered = "%.6g" % value
                rows.append((series, family.kind, rendered))
        if not rows:
            return "(no metrics registered)\n"
        width_name = max(len(row[0]) for row in rows)
        width_kind = max(len(row[1]) for row in rows)
        return (
            "\n".join(
                "%-*s  %-*s  %s" % (width_name, series, width_kind, kind, rendered)
                for series, kind, rendered in rows
            )
            + "\n"
        )


__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "MetricsRegistry",
    "TimeWeightedGauge",
]
