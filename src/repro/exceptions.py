"""Exception hierarchy for the :mod:`repro` library.

All errors raised by the library derive from :class:`ReproError`, so callers
can catch a single base class. Specific subclasses distinguish configuration
mistakes (bad privacy budgets, malformed domains) from runtime data problems
(values outside the declared domain, empty report sets).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the :mod:`repro` library."""


class PrivacyBudgetError(ReproError, ValueError):
    """Raised when a privacy budget is non-positive or otherwise invalid."""


class DomainError(ReproError, ValueError):
    """Raised when input data fall outside the declared value domain."""


class DimensionError(ReproError, ValueError):
    """Raised when dimension counts are inconsistent (e.g. ``m > d``)."""


class AggregationError(ReproError, RuntimeError):
    """Raised when aggregation is impossible (e.g. a dimension got no reports)."""


class CalibrationError(ReproError, ValueError):
    """Raised when a re-calibration is configured inconsistently."""


class DistributionError(ReproError, ValueError):
    """Raised when a population value distribution is malformed."""


class WireFormatError(ReproError, ValueError):
    """Raised when encoded bytes or a state document cannot be decoded.

    Covers truncation, corruption (checksum failure), unsupported format
    versions, and structurally malformed payloads — everything that means
    "these bytes are not a well-formed artefact", as opposed to a
    well-formed artefact produced under a different collection contract
    (that is :class:`ContractMismatchError`).
    """


class ContractMismatchError(ReproError, ValueError):
    """Raised when an artefact was produced under a different contract.

    Every encoded batch and saved server state embeds the fingerprint of
    the :class:`~repro.wire.CollectionContract` (schema + budget +
    per-attribute protocols) it was produced under; a server refuses to
    ingest, merge or restore anything whose fingerprint disagrees with
    its own contract instead of aggregating silent garbage.
    """


class TransportError(ReproError, RuntimeError):
    """Raised when the socket transport itself fails.

    Covers broken handshakes, connections dropped mid-exchange, and
    protocol violations on the stream — everything about *moving* frames,
    as opposed to the frames being malformed (:class:`WireFormatError`)
    or produced under the wrong contract (:class:`ContractMismatchError`),
    both of which keep their own types when reported over a socket.
    """
