"""Exception hierarchy for the :mod:`repro` library.

All errors raised by the library derive from :class:`ReproError`, so callers
can catch a single base class. Specific subclasses distinguish configuration
mistakes (bad privacy budgets, malformed domains) from runtime data problems
(values outside the declared domain, empty report sets).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the :mod:`repro` library."""


class PrivacyBudgetError(ReproError, ValueError):
    """Raised when a privacy budget is non-positive or otherwise invalid."""


class DomainError(ReproError, ValueError):
    """Raised when input data fall outside the declared value domain."""


class DimensionError(ReproError, ValueError):
    """Raised when dimension counts are inconsistent (e.g. ``m > d``)."""


class AggregationError(ReproError, RuntimeError):
    """Raised when aggregation is impossible (e.g. a dimension got no reports)."""


class CalibrationError(ReproError, ValueError):
    """Raised when a re-calibration is configured inconsistently."""


class DistributionError(ReproError, ValueError):
    """Raised when a population value distribution is malformed."""
