"""Exception hierarchy for the :mod:`repro` library.

All errors raised by the library derive from :class:`ReproError`, so callers
can catch a single base class. Specific subclasses distinguish configuration
mistakes (bad privacy budgets, malformed domains) from runtime data problems
(values outside the declared domain, empty report sets).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the :mod:`repro` library."""


class PrivacyBudgetError(ReproError, ValueError):
    """Raised when a privacy budget is non-positive or otherwise invalid."""


class DomainError(ReproError, ValueError):
    """Raised when input data fall outside the declared value domain."""


class DimensionError(ReproError, ValueError):
    """Raised when dimension counts are inconsistent (e.g. ``m > d``)."""


class AggregationError(ReproError, RuntimeError):
    """Raised when aggregation is impossible (e.g. a dimension got no reports)."""


class CalibrationError(ReproError, ValueError):
    """Raised when a re-calibration is configured inconsistently."""


class ParameterError(ReproError, ValueError):
    """Raised when a component parameter is invalid.

    Covers constructor and function arguments that are not data and not
    a privacy budget: non-positive sensitivities, counts below one,
    malformed ``HOST:PORT`` endpoint strings, registry name collisions,
    confidence levels outside ``(0, 1)`` and the like. Subclasses
    :class:`ValueError` so callers validating inputs generically keep
    working.
    """


class DistributionError(ReproError, ValueError):
    """Raised when a population value distribution is malformed."""


class WireFormatError(ReproError, ValueError):
    """Raised when encoded bytes or a state document cannot be decoded.

    Covers truncation, corruption (checksum failure), unsupported format
    versions, and structurally malformed payloads — everything that means
    "these bytes are not a well-formed artefact", as opposed to a
    well-formed artefact produced under a different collection contract
    (that is :class:`ContractMismatchError`).
    """


class ContractMismatchError(ReproError, ValueError):
    """Raised when an artefact was produced under a different contract.

    Every encoded batch and saved server state embeds the fingerprint of
    the :class:`~repro.wire.CollectionContract` (schema + budget +
    per-attribute protocols) it was produced under; a server refuses to
    ingest, merge or restore anything whose fingerprint disagrees with
    its own contract instead of aggregating silent garbage.
    """


class StorageError(ReproError, RuntimeError):
    """Raised when a checkpoint store cannot serve a request.

    Covers unusable store locations (unknown URI schemes, unwritable
    directories), backend failures surfaced during a save, and requests a
    store cannot honour (loading from a store that was never written).
    Raw backend exceptions (``sqlite3``, ``json``, ``OSError`` from the
    backend's own files) never escape a :class:`~repro.storage.
    CheckpointStore` — they arrive as this type or as
    :class:`CheckpointCorruptError`.
    """


class CheckpointCorruptError(StorageError, WireFormatError):
    """Raised when a stored checkpoint fails integrity validation.

    Garbage bytes, CRC failures, torn record tails and schema-drifted
    documents all land here. Subclasses :class:`WireFormatError` too, so
    callers that already guard state restoration with the wire-layer
    type keep working when the state travels through a checkpoint store.
    """


class TelemetryError(ReproError, ValueError):
    """Raised when the metrics registry is used inconsistently.

    Covers re-registering a metric name under a different type or label
    set, decrementing a counter, and label-value sets that disagree with
    the family's declared label names. Observability must never change
    the behaviour of the instrumented code, so these are raised only for
    structural misuse at registration/lookup time — recording values on
    a well-formed instrument never raises.
    """


class StateDeltaError(ReproError, ValueError):
    """Raised when no trustworthy delta exists between two snapshots.

    :func:`~repro.federation.state_dict_delta` raises this when the
    earlier snapshot is provably not a prefix of the newer one —
    mismatched contracts or formats, an attribute kind it cannot
    difference, or a monotone counter that went down. Callers treat it
    as "ship a full snapshot instead", never as corruption (that is
    :class:`WireFormatError`).
    """


class TransportError(ReproError, RuntimeError):
    """Raised when the socket transport itself fails.

    Covers broken handshakes, connections dropped mid-exchange, and
    protocol violations on the stream — everything about *moving* frames,
    as opposed to the frames being malformed (:class:`WireFormatError`)
    or produced under the wrong contract (:class:`ContractMismatchError`),
    both of which keep their own types when reported over a socket.
    """
