"""Append-only segment-log checkpoint store with CRC framing + compaction.

The write-optimized backend for high-frequency auto-checkpointing: every
``save`` *appends* one CRC-framed record to the newest segment file —
no rewrite of earlier bytes, so a crash mid-append can only tear the
final record, never a previously durable checkpoint. Segments roll over
at ``segment_max_bytes`` and the log periodically *compacts*: the newest
intact checkpoint is rewritten as the sole record of a fresh segment and
every older segment is deleted, bounding disk usage without ever holding
fewer than one durable checkpoint.

Record framing (little-endian), one record per checkpoint::

    magic b"RSEG" | u32 payload length | u32 CRC-32(payload) | payload

``load()`` is strict — any framing violation (bad magic, CRC failure,
torn tail) raises :class:`~repro.exceptions.CheckpointCorruptError`.
``recover()`` implements crash-restart semantics: a torn tail is the
*expected* artefact of SIGKILL mid-append, so it steps back to the
newest record that is fully intact.
"""

from __future__ import annotations

import contextlib
import os
import pathlib
import struct
from typing import Any, Dict, List, Mapping, Optional, Tuple, Union

from ..exceptions import CheckpointCorruptError, StorageError
from .base import (
    CheckpointStore,
    decode_document,
    document_crc,
    encode_document,
)

RECORD_MAGIC = b"RSEG"  # repro: allow[wire-constants] -- storage-local
# record framing: these bytes frame on-disk segment records and never
# cross the wire, so they live with the store that owns them.
# repro: allow[wire-constants] -- storage-local record framing (see above).
_RECORD_HEAD = struct.Struct("<4sII")

#: Roll to a fresh segment once the current one exceeds this.
DEFAULT_SEGMENT_MAX_BYTES = 8 * 1024 * 1024

#: Compact (rewrite newest checkpoint, drop history) every N saves.
DEFAULT_COMPACT_EVERY = 16


def _pack_record(payload: bytes) -> bytes:
    return _RECORD_HEAD.pack(RECORD_MAGIC, len(payload), document_crc(payload)) + payload


class SegmentLogStore(CheckpointStore):
    """Append-only checkpoint log over a directory of segment files."""

    scheme = "segments"

    def __init__(
        self,
        directory: Union[str, pathlib.Path],
        segment_max_bytes: int = DEFAULT_SEGMENT_MAX_BYTES,
        compact_every: int = DEFAULT_COMPACT_EVERY,
    ) -> None:
        if int(segment_max_bytes) < 1:
            raise StorageError(
                "segment_max_bytes must be >= 1, got %r" % (segment_max_bytes,)
            )
        if int(compact_every) < 1:
            raise StorageError(
                "compact_every must be >= 1, got %r" % (compact_every,)
            )
        self.directory = pathlib.Path(directory)
        self.segment_max_bytes = int(segment_max_bytes)
        self.compact_every = int(compact_every)
        self._saves_since_compaction = 0

    def _path_for_uri(self) -> str:
        return str(self.directory)

    # ------------------------------------------------------------ segments

    def segments(self) -> List[pathlib.Path]:
        """Segment files, oldest first (names sort by index)."""
        if not self.directory.exists():
            return []
        return sorted(self.directory.glob("*.seg"))

    @staticmethod
    def _segment_index(path: pathlib.Path) -> int:
        try:
            return int(path.stem)
        except ValueError:
            raise CheckpointCorruptError(
                "alien file %s inside the segment log" % path
            ) from None

    def _segment_path(self, index: int) -> pathlib.Path:
        return self.directory / ("%08d.seg" % index)

    def _writable_segment(self, record_size: int) -> pathlib.Path:
        existing = self.segments()
        if not existing:
            return self._segment_path(1)
        newest = existing[-1]
        if newest.stat().st_size + record_size > self.segment_max_bytes:
            return self._segment_path(self._segment_index(newest) + 1)
        return newest

    # --------------------------------------------------------------- verbs

    def save(self, document: Mapping[str, Any]) -> None:
        payload = encode_document(document)
        record = _pack_record(payload)
        started = self._op_clock()
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
            target = self._writable_segment(len(record))
            with open(target, "ab") as handle:
                handle.write(record)
                handle.flush()
                os.fsync(handle.fileno())
        except OSError as exc:
            raise StorageError(
                "segment-log append under %s failed: %s" % (self.directory, exc)
            ) from None
        self._observe_op("save", self._op_clock() - started)
        self._observe_bytes(len(record))
        self._saves_since_compaction += 1
        if self._saves_since_compaction >= self.compact_every:
            self.compact()

    def _scan_segment(
        self, path: pathlib.Path, strict: bool
    ) -> Tuple[Optional[bytes], bool]:
        """Newest intact payload of one segment, plus a corruption flag.

        ``strict`` raises on the first framing violation; otherwise the
        segment's readable prefix wins and the remainder is reported via
        the flag (a torn tail invalidates everything after it — framing
        is length-prefixed, so there is no way back into sync).
        """
        try:
            blob = path.read_bytes()
        except OSError as exc:
            raise StorageError(
                "cannot read segment %s: %s" % (path, exc)
            ) from None
        newest: Optional[bytes] = None
        offset = 0
        while offset < len(blob):
            head = blob[offset:offset + _RECORD_HEAD.size]
            corrupt: Optional[str] = None
            payload = b""
            if len(head) < _RECORD_HEAD.size:
                corrupt = "torn record head (%d trailing bytes)" % len(head)
            else:
                magic, length, crc = _RECORD_HEAD.unpack(head)
                start = offset + _RECORD_HEAD.size
                payload = blob[start:start + length]
                if magic != RECORD_MAGIC:
                    corrupt = "bad record magic %r at offset %d" % (magic, offset)
                elif len(payload) < length:
                    corrupt = (
                        "torn record tail at offset %d (%d of %d payload bytes)"
                        % (offset, len(payload), length)
                    )
                elif document_crc(payload) != crc:
                    corrupt = "CRC-32 failure at offset %d" % offset
            if corrupt is not None:
                if strict:
                    raise CheckpointCorruptError(
                        "segment %s: %s" % (path, corrupt)
                    )
                return newest, True
            newest = payload
            offset += _RECORD_HEAD.size + len(payload)
        return newest, False

    def _newest_payload(self, strict: bool) -> Tuple[Optional[bytes], bool]:
        newest: Optional[bytes] = None
        saw_corruption = False
        for path in self.segments():
            payload, corrupt = self._scan_segment(path, strict)
            if corrupt:
                saw_corruption = True
                self._observe_corrupt_skip(path.name)
            if payload is not None:
                newest = payload
        return newest, saw_corruption

    def load(self) -> Optional[Dict[str, Any]]:
        started = self._op_clock()
        payload, _ = self._newest_payload(strict=True)
        if payload is None:
            return None
        document = decode_document(payload, "segment log %s" % self.directory)
        self._observe_op("load", self._op_clock() - started)
        return document

    def recover(self) -> Optional[Dict[str, Any]]:
        started = self._op_clock()
        payload, saw_corruption = self._newest_payload(strict=False)
        if payload is None:
            if saw_corruption:
                raise CheckpointCorruptError(
                    "segment log %s holds records but not one is intact"
                    % self.directory
                )
            return None
        document = decode_document(payload, "segment log %s" % self.directory)
        self._observe_op("recover", self._op_clock() - started)
        return document

    # ---------------------------------------------------------- compaction

    def compact(self) -> None:
        """Rewrite the newest intact checkpoint as the whole log.

        The compacted record lands in a *new* segment first; older
        segments are deleted only afterwards, so a crash mid-compaction
        leaves at worst extra history, never less.
        """
        payload, _ = self._newest_payload(strict=False)
        self._saves_since_compaction = 0
        if payload is None:
            return
        existing = self.segments()
        target = self._segment_path(self._segment_index(existing[-1]) + 1)
        try:
            with open(target, "xb") as handle:
                handle.write(_pack_record(payload))
                handle.flush()
                os.fsync(handle.fileno())
        except OSError as exc:
            raise StorageError(
                "segment-log compaction under %s failed: %s"
                % (self.directory, exc)
            ) from None
        for stale in existing:
            with contextlib.suppress(OSError):
                stale.unlink()

    def log_bytes(self) -> int:
        """Total bytes across all segments (for tests and observability)."""
        return sum(path.stat().st_size for path in self.segments())
