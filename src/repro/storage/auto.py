"""Periodic auto-checkpointing for in-process collection.

:class:`AutoCheckpointer` wraps any server exposing the session state
protocol (``ingest`` / ``ingest_encoded`` / ``state_dict`` /
``load_state_dict`` — both :class:`~repro.session.LDPServer` and
:class:`~repro.session.ShardedServer` qualify) and persists a
:meth:`state_dict` snapshot into a :class:`~repro.storage.CheckpointStore`
every N ingested frames and/or every T seconds. Because the snapshot is
exact (big-integer accumulators, no floats), resuming from *any* of the
periodic checkpoints and re-folding the remaining frames yields estimates
bit-identical to a run that never stopped.

The socket gateway has its own checkpoint path (it must also persist
per-sender watermarks — see :mod:`repro.storage.checkpoint`); this class
is for batch/streaming collection in one process, e.g. the ``collection``
CLI's ``--stream`` mode.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Optional

from ..exceptions import StorageError
from ..telemetry import MetricsRegistry, emit, event_logger
from .base import CheckpointStore

_LOG = event_logger("auto_checkpointer")


class AutoCheckpointer:
    """Checkpoint a server's state every N frames and/or T seconds.

    Parameters
    ----------
    server:
        The object to snapshot; must expose ``ingest``,
        ``ingest_encoded``, ``state_dict`` and ``load_state_dict``.
    store:
        Where snapshots go.
    every_frames:
        Checkpoint after this many ingested frames (``>= 1``).
    every_seconds:
        Checkpoint when this much time passed since the last one
        (``> 0``), evaluated after each ingest.
    clock:
        Monotonic time source (injectable for tests).
    metrics:
        Optional :class:`~repro.telemetry.MetricsRegistry`; when given,
        checkpoint cuts are counted and timed (and the store is
        instrumented too if it is not already).

    At least one trigger must be given.
    """

    def __init__(
        self,
        server: Any,
        store: CheckpointStore,
        every_frames: Optional[int] = None,
        every_seconds: Optional[float] = None,
        clock: Callable[[], float] = time.monotonic,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        if every_frames is None and every_seconds is None:
            raise StorageError(
                "an AutoCheckpointer needs at least one trigger "
                "(every_frames and/or every_seconds)"
            )
        if every_frames is not None and int(every_frames) < 1:
            raise StorageError(
                "every_frames must be >= 1, got %r" % (every_frames,)
            )
        if every_seconds is not None and float(every_seconds) <= 0:
            raise StorageError(
                "every_seconds must be > 0, got %r" % (every_seconds,)
            )
        self.server = server
        self.store = store
        self.every_frames = None if every_frames is None else int(every_frames)
        self.every_seconds = None if every_seconds is None else float(every_seconds)
        self._clock = clock
        self._frames_since_checkpoint = 0
        self._last_checkpoint_at = clock()
        self.checkpoints_written = 0
        self.telemetry = metrics
        if metrics is not None:
            self._m_checkpoints = metrics.counter(
                "auto_checkpoints_written_total",
                "Snapshots persisted by the auto-checkpointer",
            )
            self._m_checkpoint_seconds = metrics.histogram(
                "auto_checkpoint_seconds",
                "state_dict() + store.save() per auto-checkpoint",
            )
            if store.telemetry is None:
                store.attach_telemetry(metrics)

    # ------------------------------------------------------------- ingest

    def ingest(self, *args: Any, **kwargs: Any) -> Any:
        """Forward to the server's ``ingest``, then maybe checkpoint."""
        result = self.server.ingest(*args, **kwargs)
        self._note_frame()
        return result

    def ingest_encoded(self, *args: Any, **kwargs: Any) -> Any:
        """Forward to the server's ``ingest_encoded``, then maybe checkpoint."""
        result = self.server.ingest_encoded(*args, **kwargs)
        self._note_frame()
        return result

    def _note_frame(self) -> None:
        self._frames_since_checkpoint += 1
        if self._due():
            self.checkpoint()

    def _due(self) -> bool:
        if (
            self.every_frames is not None
            and self._frames_since_checkpoint >= self.every_frames
        ):
            return True
        if (
            self.every_seconds is not None
            and self._clock() - self._last_checkpoint_at >= self.every_seconds
        ):
            return True
        return False

    # -------------------------------------------------------- checkpoints

    def checkpoint(self) -> None:
        """Persist a snapshot now, unconditionally."""
        frames = self._frames_since_checkpoint
        started = self._clock()
        self.store.save(self.server.state_dict())
        self.checkpoints_written += 1
        self._frames_since_checkpoint = 0
        self._last_checkpoint_at = self._clock()
        seconds = self._last_checkpoint_at - started
        if self.telemetry is not None:
            self._m_checkpoints.inc()
            self._m_checkpoint_seconds.observe(seconds)
        emit(
            _LOG,
            "checkpoint_cut",
            trigger="auto",
            frames=frames,
            seconds=round(seconds, 6),
        )

    def resume(self) -> bool:
        """Restore the newest intact checkpoint, if the store holds one.

        Returns ``True`` when a snapshot was restored into the server,
        ``False`` when the store was empty. Damage beyond what the
        backend can step past surfaces as
        :class:`~repro.exceptions.CheckpointCorruptError`.
        """
        document = self.store.recover()
        if document is None:
            return False
        self.server.load_state_dict(document)
        emit(
            _LOG,
            "recovery_replayed",
            users=getattr(self.server, "users", None),
            store=self.store.location,
        )
        return True
