"""Checkpoint-store URIs: one string selects a backend and a location.

The collection CLI (and anything else configured by flat strings) names
its durable state as ``scheme://path``::

    file://round.json       atomic single-document JSON file
    sqlite://round.db       generational sqlite table
    segments://round-log/   append-only CRC-framed segment log

A bare path with no ``://`` keeps working as the JSON file backend, so
every pre-existing ``--checkpoint PATH`` invocation means what it always
meant.
"""

from __future__ import annotations

from typing import Tuple

from ..exceptions import StorageError
from .base import CheckpointStore
from .jsonfile import JsonFileStore
from .segments import SegmentLogStore
from .sqlite import SqliteStore

_BACKENDS = {
    JsonFileStore.scheme: JsonFileStore,
    SqliteStore.scheme: SqliteStore,
    SegmentLogStore.scheme: SegmentLogStore,
}


def parse_storage_uri(uri: str) -> Tuple[str, str]:
    """Split ``scheme://path`` into its parts, validating both.

    A string without ``://`` parses as the ``file`` scheme. Unknown
    schemes and empty paths raise :class:`StorageError` naming every
    scheme the library knows.
    """
    if not isinstance(uri, str) or not uri:
        raise StorageError("a checkpoint URI must be a non-empty string")
    scheme, separator, path = uri.partition("://")
    if not separator:
        scheme, path = JsonFileStore.scheme, uri
    if scheme not in _BACKENDS:
        raise StorageError(
            "unknown checkpoint scheme %r in %r (known: %s)"
            % (scheme, uri, ", ".join(sorted(_BACKENDS)))
        )
    if not path:
        raise StorageError("checkpoint URI %r names no path" % uri)
    return scheme, path


def open_store(uri: str) -> CheckpointStore:
    """Open the checkpoint store a URI describes."""
    scheme, path = parse_storage_uri(uri)
    return _BACKENDS[scheme](path)
