"""The checkpoint-store contract and the document codec it builds on.

A :class:`CheckpointStore` durably persists a sequence of checkpoint
*documents* — plain JSON-able mappings, such as
:meth:`~repro.session.LDPServer.state_dict` snapshots or the transport
layer's round checkpoints — and serves the newest one back. The contract
every backend honours:

* ``save(document)`` is durable once it returns, and a crash mid-save can
  never destroy the previously saved checkpoint;
* ``load()`` is strict: it returns the newest saved document, raising
  :class:`~repro.exceptions.CheckpointCorruptError` if that document
  fails integrity validation (garbage bytes, CRC failure, torn tail,
  structural drift) — the caller hears about damage instead of silently
  time-travelling to an older checkpoint;
* ``recover()`` is the crash-restart verb: it returns the newest *intact*
  document, skipping damaged newer records where the backend retains
  history (an append-only log's torn tail is the normal artefact of a
  crash mid-append, not an error). Resuming from an older checkpoint is
  always safe for collection rounds — watermarks are lower, so senders
  replay the difference — whereas resuming from a damaged one never is;
* no raw backend exception (``json``, ``sqlite3``, backend ``OSError``)
  escapes — everything arrives typed as
  :class:`~repro.exceptions.StorageError` or its corruption subclass.

Backends: :class:`~repro.storage.JsonFileStore` (atomic single-document
file), :class:`~repro.storage.SqliteStore` (generational table),
:class:`~repro.storage.SegmentLogStore` (append-only CRC-framed segment
log with compaction). :func:`~repro.storage.open_store` resolves
``file://`` / ``sqlite://`` / ``segments://`` URIs onto them.
"""

from __future__ import annotations

import abc
import json
import logging
import zlib
from typing import Any, Dict, Mapping, Optional

from ..exceptions import CheckpointCorruptError, StorageError
from ..telemetry import MetricsRegistry, emit, event_logger

_LOG = event_logger("storage")


def encode_document(document: Mapping[str, Any]) -> bytes:
    """Serialize one checkpoint document canonically (sorted keys, UTF-8).

    Raises :class:`StorageError` when the document is not JSON-able —
    a store must refuse an unserializable checkpoint *before* touching
    its durable state.
    """
    if not isinstance(document, Mapping):
        raise StorageError(
            "a checkpoint document must be a mapping, got %s"
            % type(document).__name__
        )
    try:
        text = json.dumps(dict(document), sort_keys=True)
    except (TypeError, ValueError) as exc:
        raise StorageError(
            "checkpoint document is not JSON-serializable: %s" % exc
        ) from None
    return text.encode("utf-8")


def decode_document(blob: bytes, source: str) -> Dict[str, Any]:
    """Parse one stored checkpoint payload back into a document.

    Anything that is not a JSON object — garbage bytes, truncation,
    a JSON scalar — raises :class:`CheckpointCorruptError` naming the
    offending record.
    """
    try:
        document = json.loads(blob.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise CheckpointCorruptError(
            "%s does not hold a valid checkpoint document: %s" % (source, exc)
        ) from None
    if not isinstance(document, dict):
        raise CheckpointCorruptError(
            "%s holds a JSON %s where a checkpoint document (object) was "
            "expected" % (source, type(document).__name__)
        )
    return document


def document_crc(blob: bytes) -> int:
    """CRC-32 of an encoded document (the stores' integrity seal)."""
    return zlib.crc32(blob) & 0xFFFFFFFF


class CheckpointStore(abc.ABC):
    """Durable storage for a sequence of checkpoint documents.

    Use as a context manager so backend handles (sqlite connections,
    open segment files) cannot leak::

        with open_store("sqlite://round.db") as store:
            store.save(server.state_dict())
    """

    #: URI scheme this backend answers to (``file``/``sqlite``/``segments``).
    scheme: str = ""

    #: Optional :class:`~repro.telemetry.MetricsRegistry`; ``None`` means
    #: uninstrumented (the default — observability is strictly opt-in).
    telemetry: Optional[MetricsRegistry] = None

    def attach_telemetry(self, metrics: MetricsRegistry) -> "CheckpointStore":
        """Instrument this store against ``metrics`` (idempotent).

        Registers ``storage_save_seconds`` / ``storage_load_seconds`` /
        ``storage_recover_seconds`` histograms,
        ``storage_bytes_written_total`` and
        ``storage_corrupt_records_skipped_total`` counters — all
        labelled by ``backend`` (the store's scheme), so one registry
        can carry several stores. Returns ``self`` for chaining.
        """
        self.telemetry = metrics
        self._m_op_seconds = {
            op: metrics.histogram(
                "storage_%s_seconds" % op,
                "Checkpoint store %s() latency" % op,
                labels=("backend",),
            ).labels(backend=self.scheme)
            for op in ("save", "load", "recover")
        }
        self._m_bytes_written = metrics.counter(
            "storage_bytes_written_total",
            "Encoded checkpoint bytes handed to the backend",
            labels=("backend",),
        ).labels(backend=self.scheme)
        self._m_corrupt_skipped = metrics.counter(
            "storage_corrupt_records_skipped_total",
            "Damaged records stepped past during recover()",
            labels=("backend",),
        ).labels(backend=self.scheme)
        return self

    def _observe_op(self, op: str, seconds: float) -> None:
        """Record one timed store operation (no-op when uninstrumented)."""
        if self.telemetry is not None:
            self._m_op_seconds[op].observe(seconds)

    def _observe_bytes(self, nbytes: int) -> None:
        if self.telemetry is not None:
            self._m_bytes_written.inc(nbytes)

    def _observe_corrupt_skip(self, generation: Any) -> None:
        """Count one damaged record skipped during :meth:`recover`."""
        if self.telemetry is not None:
            self._m_corrupt_skipped.inc()
        emit(
            _LOG,
            "corrupt_skipped",
            level=logging.WARNING,
            backend=self.scheme,
            generation=generation,
        )

    def _op_clock(self) -> float:
        """The telemetry clock, or 0.0 when uninstrumented.

        Backends bracket their operations with this so the timing source
        matches the registry's (injectable) clock; with no registry the
        subtraction still works and the result is discarded.
        """
        if self.telemetry is not None:
            return self.telemetry.clock()
        return 0.0

    @abc.abstractmethod
    def save(self, document: Mapping[str, Any]) -> None:
        """Durably persist ``document`` as the newest checkpoint."""

    @abc.abstractmethod
    def load(self) -> Optional[Dict[str, Any]]:
        """The newest checkpoint, or ``None`` if nothing was ever saved.

        Strict: a damaged newest checkpoint raises
        :class:`CheckpointCorruptError` instead of silently falling back.
        """

    @abc.abstractmethod
    def recover(self) -> Optional[Dict[str, Any]]:
        """The newest *intact* checkpoint (crash-restart semantics).

        Skips damaged newer records where the backend retains history;
        raises :class:`CheckpointCorruptError` only when the store holds
        data but not one single readable checkpoint.
        """

    def close(self) -> None:
        """Release backend resources (idempotent)."""

    @property
    def location(self) -> str:
        """The store's URI (``scheme://path``)."""
        return "%s://%s" % (self.scheme, self._path_for_uri())

    def _path_for_uri(self) -> str:
        raise NotImplementedError

    def __enter__(self) -> "CheckpointStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return "%s(%r)" % (type(self).__name__, self.location)
