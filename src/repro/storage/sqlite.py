"""Sqlite checkpoint store: a generational table of sealed documents.

Each ``save`` inserts a new generation row ``(generation, crc, document)``
and prunes the oldest rows beyond ``keep`` — the store retains a short
history, so a corrupted newest checkpoint (detected by its CRC-32 seal
or a failed parse) still leaves the previous generation readable through
:meth:`SqliteStore.recover`. Sqlite's own journal makes each insert
atomic; the CRC seal catches damage sqlite cannot (a row rewritten by an
external actor, bit rot under a copy).

All ``sqlite3`` exceptions are wrapped: an unusable database file raises
:class:`~repro.exceptions.CheckpointCorruptError` (the bytes are not a
database — nothing is readable) and operational failures raise
:class:`~repro.exceptions.StorageError`.
"""

from __future__ import annotations

import pathlib
import sqlite3
from typing import Any, Dict, Mapping, Optional, Union

from ..exceptions import CheckpointCorruptError, StorageError
from .base import (
    CheckpointStore,
    decode_document,
    document_crc,
    encode_document,
)

_SCHEMA = """
CREATE TABLE IF NOT EXISTS checkpoints (
    generation INTEGER PRIMARY KEY AUTOINCREMENT,
    crc        INTEGER NOT NULL,
    document   BLOB    NOT NULL
)
"""


class SqliteStore(CheckpointStore):
    """Checkpoint store over one sqlite database file.

    Parameters
    ----------
    path:
        Database file (created on first save).
    keep:
        Generations retained; older rows are pruned on save. Must be
        >= 1 — keeping at least two is what makes :meth:`recover` able
        to step past a damaged newest row.
    """

    scheme = "sqlite"

    def __init__(self, path: Union[str, pathlib.Path], keep: int = 4) -> None:
        if int(keep) < 1:
            raise StorageError(
                "a sqlite store must keep at least one generation, got %r"
                % (keep,)
            )
        self.path = pathlib.Path(path)
        self.keep = int(keep)
        self._connection: Optional[sqlite3.Connection] = None

    def _path_for_uri(self) -> str:
        return str(self.path)

    def _connect(self) -> sqlite3.Connection:
        if self._connection is None:
            try:
                connection = sqlite3.connect(str(self.path))
                connection.execute(_SCHEMA)
                connection.commit()
            except sqlite3.DatabaseError as exc:
                raise CheckpointCorruptError(
                    "%s is not a usable sqlite checkpoint store: %s"
                    % (self.path, exc)
                ) from None
            except sqlite3.Error as exc:
                raise StorageError(
                    "cannot open sqlite checkpoint store %s: %s"
                    % (self.path, exc)
                ) from None
            self._connection = connection
        return self._connection

    def close(self) -> None:
        if self._connection is not None:
            self._connection.close()
            self._connection = None

    # --------------------------------------------------------------- verbs

    def save(self, document: Mapping[str, Any]) -> None:
        blob = encode_document(document)
        crc = document_crc(blob)
        started = self._op_clock()
        try:
            connection = self._connect()
            with connection:  # one transaction: insert + prune
                connection.execute(
                    "INSERT INTO checkpoints (crc, document) VALUES (?, ?)",
                    (crc, blob),
                )
                connection.execute(
                    "DELETE FROM checkpoints WHERE generation NOT IN ("
                    "SELECT generation FROM checkpoints "
                    "ORDER BY generation DESC LIMIT ?)",
                    (self.keep,),
                )
        except sqlite3.Error as exc:
            raise StorageError(
                "sqlite checkpoint save to %s failed: %s" % (self.path, exc)
            ) from None
        self._observe_op("save", self._op_clock() - started)
        self._observe_bytes(len(blob))

    def _rows(self):
        if not self.path.exists():
            return []
        try:
            return self._connect().execute(
                "SELECT generation, crc, document FROM checkpoints "
                "ORDER BY generation DESC"
            ).fetchall()
        except CheckpointCorruptError:
            raise
        except sqlite3.Error as exc:
            raise CheckpointCorruptError(
                "cannot read checkpoints from %s: %s" % (self.path, exc)
            ) from None

    def _validate(self, generation: int, crc: int, blob: Any) -> Dict[str, Any]:
        source = "checkpoint generation %d of %s" % (generation, self.path)
        payload = bytes(blob) if not isinstance(blob, bytes) else blob
        if document_crc(payload) != crc:
            raise CheckpointCorruptError(
                "%s fails its CRC-32 seal (stored %d, computed %d)"
                % (source, crc, document_crc(payload))
            )
        return decode_document(payload, source)

    def load(self) -> Optional[Dict[str, Any]]:
        started = self._op_clock()
        rows = self._rows()
        if not rows:
            return None
        generation, crc, blob = rows[0]
        document = self._validate(generation, crc, blob)
        self._observe_op("load", self._op_clock() - started)
        return document

    def recover(self) -> Optional[Dict[str, Any]]:
        started = self._op_clock()
        rows = self._rows()
        if not rows:
            return None
        for generation, crc, blob in rows:
            try:
                document = self._validate(generation, crc, blob)
            except CheckpointCorruptError:
                self._observe_corrupt_skip(generation)
                continue  # step back one generation
            self._observe_op("recover", self._op_clock() - started)
            return document
        raise CheckpointCorruptError(
            "%s holds %d checkpoint generation(s) but none is readable"
            % (self.path, len(rows))
        )

    def generations(self) -> int:
        """Number of retained generations (for tests and observability)."""
        return len(self._rows())
