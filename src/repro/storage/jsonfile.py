"""Atomic single-document JSON file checkpoint store.

The simplest durable backend: one file, holding the latest checkpoint
document as canonical JSON. Writes go through a temp-file-and-rename in
the target's own directory, so a crash mid-save can never destroy the
previous good checkpoint, and a failed write removes its scratch file
instead of leaving a stale partial ``.tmp`` beside the target — this
store is the library-wide home of what used to be ad-hoc logic inside
:meth:`~repro.session.LDPServer.save_state` (which now delegates here,
as does :meth:`~repro.session.ShardedServer.save_state`).

Keeping exactly one document means ``recover()`` cannot fall back past a
damaged file — atomic replacement makes a torn *write* impossible, so a
corrupt file implies external damage and both verbs raise.
"""

from __future__ import annotations

import contextlib
import os
import pathlib
from typing import Any, Dict, Mapping, Optional, Union

from ..exceptions import StorageError
from .base import CheckpointStore, decode_document, encode_document


class JsonFileStore(CheckpointStore):
    """Latest-checkpoint-only store over one atomic JSON file."""

    scheme = "file"

    def __init__(self, path: Union[str, pathlib.Path]) -> None:
        self.path = pathlib.Path(path)

    def _path_for_uri(self) -> str:
        return str(self.path)

    def save(self, document: Mapping[str, Any]) -> None:
        blob = encode_document(document)  # refuse before touching disk
        started = self._op_clock()
        scratch = self.path.with_name(self.path.name + ".tmp")
        try:
            scratch.write_text(blob.decode("utf-8") + "\n")
            os.replace(scratch, self.path)
        # repro: allow[broad-except] -- cleanup-and-reraise: the atomic
        # save's scratch file must not survive any failure (including
        # CancelledError); the original error propagates untouched.
        except BaseException:
            with contextlib.suppress(OSError):
                scratch.unlink()
            raise
        self._observe_op("save", self._op_clock() - started)
        self._observe_bytes(len(blob))

    def load(self) -> Optional[Dict[str, Any]]:
        started = self._op_clock()
        try:
            blob = self.path.read_bytes()
        except FileNotFoundError:
            return None
        document = decode_document(blob, "checkpoint file %s" % self.path)
        self._observe_op("load", self._op_clock() - started)
        return document

    def recover(self) -> Optional[Dict[str, Any]]:
        # One document, atomically replaced: there is no older record to
        # fall back to, so recovery is exactly the strict load.
        started = self._op_clock()
        document = self.load()
        self._observe_op("recover", self._op_clock() - started)
        return document

    # ------------------------------------------------------------- helpers

    def load_required(self) -> Dict[str, Any]:
        """Like :meth:`load`, but a missing file is an error.

        Used by the session layer's ``load_state``, where resuming from
        a checkpoint that does not exist is a caller mistake, not an
        empty store.
        """
        document = self.load()
        if document is None:
            raise StorageError("no checkpoint at %s" % self.path)
        return document
