"""Durable checkpoint storage for collection rounds.

One interface, three backends:

* :class:`JsonFileStore` (``file://``) — one atomic JSON file; the
  library-wide home of the temp-file-and-rename logic the session layer
  used to hand-roll;
* :class:`SqliteStore` (``sqlite://``) — a generational table of
  CRC-sealed documents with bounded history;
* :class:`SegmentLogStore` (``segments://``) — an append-only CRC-framed
  segment log with compaction, the write-optimized choice for
  high-frequency auto-checkpointing.

:func:`open_store` resolves a ``scheme://path`` URI (a bare path means
``file``); :class:`AutoCheckpointer` snapshots a server every N frames
and/or T seconds; :func:`round_checkpoint_document` /
:func:`parse_round_checkpoint` carry the socket gateway's state *plus*
per-sender acknowledgement watermarks, so a restarted gateway resumes
exactly and deduplicates replayed frames.

Every backend raises typed errors only:
:class:`~repro.exceptions.StorageError` for operational failures,
:class:`~repro.exceptions.CheckpointCorruptError` for damaged state, and
:class:`~repro.exceptions.ContractMismatchError` when a checkpoint was
written under a different collection contract.
"""

from .auto import AutoCheckpointer
from .base import (
    CheckpointStore,
    decode_document,
    document_crc,
    encode_document,
)
from .checkpoint import (
    ROUND_FORMAT,
    ROUND_VERSION,
    parse_round_checkpoint,
    round_checkpoint_document,
)
from .jsonfile import JsonFileStore
from .segments import (
    DEFAULT_COMPACT_EVERY,
    DEFAULT_SEGMENT_MAX_BYTES,
    RECORD_MAGIC,
    SegmentLogStore,
)
from .sqlite import SqliteStore
from .uri import open_store, parse_storage_uri

__all__ = [
    "AutoCheckpointer",
    "CheckpointStore",
    "DEFAULT_COMPACT_EVERY",
    "DEFAULT_SEGMENT_MAX_BYTES",
    "JsonFileStore",
    "RECORD_MAGIC",
    "ROUND_FORMAT",
    "ROUND_VERSION",
    "SegmentLogStore",
    "SqliteStore",
    "decode_document",
    "document_crc",
    "encode_document",
    "open_store",
    "parse_round_checkpoint",
    "parse_storage_uri",
    "round_checkpoint_document",
]
