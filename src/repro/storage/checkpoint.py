"""Round checkpoint documents: server state plus per-sender watermarks.

A *round checkpoint* is what the socket gateway persists between frames:
the aggregation snapshot (:meth:`~repro.session.LDPServer.state_dict`)
together with the high-water mark of acknowledged frame sequence numbers
per sender connection. A restarted gateway restores the snapshot, tells
each reconnecting sender its watermark, and acknowledges-without-folding
any frame at or below it — so replayed frames are deduplicated and the
finished round's estimates are bit-identical to an uninterrupted one.

Structural damage (missing keys, wrong types, alien formats) raises
:class:`~repro.exceptions.CheckpointCorruptError`; a checkpoint written
under a *different* collection contract raises
:class:`~repro.exceptions.ContractMismatchError` naming both
fingerprints, exactly like batch ingestion does.
"""

from __future__ import annotations

from typing import Any, Dict, Mapping, Tuple

from ..exceptions import CheckpointCorruptError
from ..wire import CollectionContract

ROUND_FORMAT = "repro-collection-round"
ROUND_VERSION = 1


def round_checkpoint_document(
    state: Mapping[str, Any],
    progress: Mapping[bytes, int],
    frames: int,
) -> Dict[str, Any]:
    """Build the checkpoint document for one in-flight collection round.

    Parameters
    ----------
    state:
        An :meth:`~repro.session.LDPServer.state_dict` snapshot (its
        embedded fingerprint is lifted to the top level so restoration
        can refuse a foreign contract before touching the snapshot).
    progress:
        Highest *contiguously acknowledged* frame sequence number per
        sender id. Keys are the raw 16-byte sender ids.
    frames:
        Total frames folded into ``state`` (observability only).
    """
    return {
        "format": ROUND_FORMAT,
        "round_version": ROUND_VERSION,
        "fingerprint": state.get("fingerprint"),
        "state": dict(state),
        "progress": {
            sender_id.hex(): int(watermark)
            for sender_id, watermark in progress.items()
        },
        "frames": int(frames),
    }


def parse_round_checkpoint(
    document: Mapping[str, Any],
    contract: CollectionContract,
) -> Tuple[Dict[str, Any], Dict[bytes, int], int]:
    """Validate a round checkpoint against ``contract`` and unpack it.

    Returns ``(state, progress, frames)`` with progress keyed by raw
    sender-id bytes again.
    """
    if not isinstance(document, Mapping) or document.get("format") != ROUND_FORMAT:
        raise CheckpointCorruptError(
            "not a %r document: %r" % (ROUND_FORMAT, document)
        )
    if document.get("round_version") != ROUND_VERSION:
        raise CheckpointCorruptError(
            "unsupported round checkpoint version %r (this build speaks %d)"
            % (document.get("round_version"), ROUND_VERSION)
        )
    fingerprint = document.get("fingerprint")
    try:
        digest = bytes.fromhex(fingerprint)
    except (TypeError, ValueError):
        raise CheckpointCorruptError(
            "malformed round checkpoint fingerprint: %r" % (fingerprint,)
        ) from None
    contract.require_digest(digest, "round checkpoint")
    state = document.get("state")
    if not isinstance(state, Mapping):
        raise CheckpointCorruptError(
            "round checkpoint carries no state snapshot: %r" % (state,)
        )
    raw_progress = document.get("progress")
    if not isinstance(raw_progress, Mapping):
        raise CheckpointCorruptError(
            "round checkpoint carries no progress table: %r" % (raw_progress,)
        )
    progress: Dict[bytes, int] = {}
    for key, watermark in raw_progress.items():
        try:
            sender_id = bytes.fromhex(key)
        except (TypeError, ValueError):
            raise CheckpointCorruptError(
                "malformed sender id %r in round checkpoint" % (key,)
            ) from None
        if (
            not isinstance(watermark, int)
            or isinstance(watermark, bool)
            or watermark < 0
        ):
            raise CheckpointCorruptError(
                "malformed watermark %r for sender %s" % (watermark, key)
            )
        progress[sender_id] = watermark
    frames = document.get("frames")
    if not isinstance(frames, int) or isinstance(frames, bool) or frames < 0:
        raise CheckpointCorruptError(
            "malformed frame count %r in round checkpoint" % (frames,)
        )
    return dict(state), progress, frames
