"""Versioned binary wire format for report batches.

``encode_batch`` turns a :class:`~repro.session.ReportBatch` into a
self-describing byte string; ``decode_batch`` turns it back, bit for bit.
The format is deliberately simple — little-endian structs and raw array
bytes — and strict: a decoder rejects bad magic, unknown versions,
truncated or corrupted buffers (CRC-32 over the whole frame), malformed
attribute blocks, unknown protocol names, and batches produced under a
different :class:`~repro.wire.CollectionContract`.

Frame layout (versions 1 and 2, all integers little-endian)::

    offset  size  field
    0       4     magic  b"LDPW"
    4       2     wire version (1 or 2)
    6       16    contract digest (SHA-256 prefix, see repro.wire.contract)
    22      8     users in the batch (u64)
    30      4     number of attribute blocks (u32)
    34      ...   attribute blocks, in batch order
    end-4   4     CRC-32 of everything before it

Attribute block::

    2     attribute-name length   } utf-8 bytes follow each length
    2     protocol-name length    }
    8     contributing users k (u64)
    1     payload family tag
    ...   family-specific payload

Version 1 payload families cover every report representation the
registered protocols produce:

    0  FLOAT_VECTOR   k float64            numeric mechanism reports
    1  FLOAT_MATRIX   u32 width, k*width   dense histogram matrices
                      float64
    2  INT_VECTOR     k int64              GRR noisy labels
    3  OLH_REPORTS    k*2 int64 seeds,     OLH (seed, bucket) pairs
                      k int64 buckets

Version 2 keeps those four and adds compressed families (plus a compact
``INT_VECTOR`` body — see below)::

    4  BIT_MATRIX     u32 width v,         0/1 matrices (OUE reports)
                      k * ceil(v/8) bytes  packed row-major via packbits
    5  SPARSE_MATRIX  u32 width v,         low-density float matrices as
                      u64 nnz,             sorted (flat index, value)
                      nnz int64 indices,   pairs; strictly increasing
                      nnz float64 values   in-range indices required

In a version-2 frame the ``INT_VECTOR`` body is ``u8 itemsize`` followed
by ``k`` signed little-endian integers of that width — GRR labels travel
at the narrowest signed dtype holding the payload's range (int8 for any
domain under 128 categories) instead of a fixed int64 lane.

``_encode_payload`` picks the family per payload: a float matrix whose
entries are all exactly 0.0/1.0 packs as ``BIT_MATRIX`` (64× smaller,
losslessly restored to the identical float64 matrix); a matrix with at
most :data:`~repro.wire.packing.SPARSE_DENSITY_CUTOFF` non-zero entries
ships as ``SPARSE_MATRIX``; everything else falls back to the dense v1
family. Decoding is strict about the compressed bodies too: set padding
bits past column ``v``, out-of-range or non-increasing sparse indices,
explicit sparse zeros, and invalid integer lane widths all raise
:class:`~repro.exceptions.WireFormatError`.

Version-1 frames still decode (the golden fixture under ``tests/data``
pins that), and a version-1 decoder cleanly refuses version-2 frames
through the existing version check — no v1 peer can half-read a
compressed frame.

Arrays are serialized as raw little-endian bytes, so ``decode(encode(b))``
reproduces payloads exactly — ingesting a decoded batch yields estimates
bit-identical to ingesting the in-memory original. Decoding is
zero-copy where the wire body already is the in-memory representation:
payload arrays are read-only :func:`numpy.frombuffer` views into the
frame buffer (they keep it alive), so a gateway folds reports without
ever duplicating the frame.
"""

from __future__ import annotations

import struct
import zlib
from typing import Any, Dict, Iterator, NamedTuple, Optional, Tuple

import numpy as np

from ..exceptions import WireFormatError
from ..freq_oracles.olh import OlhReports
from .contract import DIGEST_SIZE, CollectionContract
from .constants import CRC32, U8, U32, U64
from .packing import (
    SPARSE_DENSITY_CUTOFF,
    dense_from_sparse,
    int_dtype_for_width,
    is_bit_matrix,
    narrowest_int_dtype,
    pack_bit_matrix,
    packed_row_bytes,
    sparse_from_dense,
    unpack_bit_matrix,
)

MAGIC = b"LDPW"
WIRE_VERSION = 2
#: Frame versions this decoder accepts. Encoders may target any of them
#: (``encode_batch(..., version=1)`` produces byte-identical v1 frames,
#: which is how the golden back-compat fixture was generated).
SUPPORTED_WIRE_VERSIONS = (1, 2)

FLOAT_VECTOR = 0
FLOAT_MATRIX = 1
INT_VECTOR = 2
OLH_REPORTS = 3
BIT_MATRIX = 4
SPARSE_MATRIX = 5

_HEADER = struct.Struct("<4sH%dsQI" % DIGEST_SIZE)
_ATTR_HEAD = struct.Struct("<HHQB")
_U8 = U8
_U32 = U32
_U64 = U64
_CRC = CRC32

_FLOAT = np.dtype("<f8")
_INT = np.dtype("<i8")


# --------------------------------------------------------------------------
# Encoding
# --------------------------------------------------------------------------


def _encode_float_matrix(name: str, array: np.ndarray, version: int) -> bytes:
    """Pick the cheapest family for a 2-D float payload (v2 frames)."""
    width = array.shape[1]
    if version >= 2 and width >= 1:
        if is_bit_matrix(array):
            return (
                bytes([BIT_MATRIX])
                + _U32.pack(width)
                + pack_bit_matrix(array)
            )
        nnz = int(np.count_nonzero(array))
        if nnz <= SPARSE_DENSITY_CUTOFF * array.size:
            indices, values = sparse_from_dense(array)
            return (
                bytes([SPARSE_MATRIX])
                + _U32.pack(width)
                + _U64.pack(indices.size)
                + np.ascontiguousarray(indices, _INT).tobytes()
                + np.ascontiguousarray(values, _FLOAT).tobytes()
            )
    return (
        bytes([FLOAT_MATRIX])
        + _U32.pack(width)
        + np.ascontiguousarray(array, _FLOAT).tobytes()
    )


def _encode_payload(name: str, payload: Any, count: int, version: int) -> bytes:
    """Serialize one attribute payload as ``family tag + body``."""
    if isinstance(payload, OlhReports):
        seeds = np.ascontiguousarray(payload.seeds, dtype=_INT)
        buckets = np.ascontiguousarray(payload.buckets, dtype=_INT)
        if seeds.shape != (count, 2) or buckets.shape != (count,):
            raise WireFormatError(
                "attribute %r: OLH payload shapes %s/%s disagree with "
                "count %d" % (name, seeds.shape, buckets.shape, count)
            )
        return bytes([OLH_REPORTS]) + seeds.tobytes() + buckets.tobytes()
    array = np.asarray(payload)
    if np.issubdtype(array.dtype, np.integer) and array.ndim == 1:
        if array.shape != (count,):
            raise WireFormatError(
                "attribute %r: payload has %d rows but count is %d"
                % (name, array.shape[0], count)
            )
        if version >= 2:
            narrow = narrowest_int_dtype(array)
            return (
                bytes([INT_VECTOR])
                + _U8.pack(narrow.itemsize)
                + np.ascontiguousarray(array, narrow).tobytes()
            )
        return bytes([INT_VECTOR]) + np.ascontiguousarray(array, _INT).tobytes()
    if np.issubdtype(array.dtype, np.floating):
        if array.ndim == 1:
            if array.shape != (count,):
                raise WireFormatError(
                    "attribute %r: payload has %d rows but count is %d"
                    % (name, array.shape[0], count)
                )
            return bytes([FLOAT_VECTOR]) + np.ascontiguousarray(
                array, _FLOAT
            ).tobytes()
        if array.ndim == 2:
            if array.shape[0] != count:
                raise WireFormatError(
                    "attribute %r: payload has %d rows but count is %d"
                    % (name, array.shape[0], count)
                )
            return _encode_float_matrix(name, array, version)
    raise WireFormatError(
        "attribute %r: no wire family for payload of type %s"
        % (name, type(payload).__name__)
    )


def encode_batch(
    batch: Any,
    contract: CollectionContract,
    version: int = WIRE_VERSION,
) -> bytes:
    """Encode a :class:`~repro.session.ReportBatch` under ``contract``.

    The contract's digest is embedded in the frame header; decoders
    (and :meth:`LDPServer.ingest_encoded`) verify it before aggregating.
    Raises :class:`WireFormatError` if ``batch`` is not a
    :class:`~repro.session.ReportBatch` at all, or if it names attributes
    or protocols outside the contract.

    ``version`` selects the frame version (default: the current
    :data:`WIRE_VERSION`). Version 1 emits only the four original dense
    families — byte-identical to the v1 encoder — which keeps old
    decoders, stored frames and the golden back-compat fixture honest.
    """
    from ..session.client import ReportBatch

    if not isinstance(batch, ReportBatch):
        raise WireFormatError(
            "encode_batch expects a repro.session.ReportBatch, got %s"
            % type(batch).__name__
        )
    if version not in SUPPORTED_WIRE_VERSIONS:
        raise WireFormatError(
            "cannot encode wire version %r (this build speaks %s)"
            % (version, ", ".join(map(str, SUPPORTED_WIRE_VERSIONS)))
        )
    expected = dict(zip(contract.schema.names, contract.protocols))
    parts = [
        _HEADER.pack(
            MAGIC, version, contract.digest, batch.users, len(batch.payloads)
        )
    ]
    for name, payload in batch.payloads.items():
        if name not in expected:
            raise WireFormatError(
                "batch reports attribute %r which the contract does not "
                "declare (contract covers: %s)"
                % (name, ", ".join(contract.schema.names))
            )
        protocol = batch.protocols.get(name, expected[name])
        if protocol != expected[name]:
            raise WireFormatError(
                "attribute %r: batch was produced by protocol %r but the "
                "contract declares %r" % (name, protocol, expected[name])
            )
        count = int(batch.counts[name])
        name_bytes = name.encode("utf-8")
        protocol_bytes = protocol.encode("utf-8")
        body = _encode_payload(name, payload, count, version)
        parts.append(
            _ATTR_HEAD.pack(len(name_bytes), len(protocol_bytes), count, body[0])
        )
        parts.append(name_bytes)
        parts.append(protocol_bytes)
        parts.append(body[1:])
    frame = b"".join(parts)
    return frame + _CRC.pack(zlib.crc32(frame))


# --------------------------------------------------------------------------
# Decoding
# --------------------------------------------------------------------------


class _Reader:
    """Bounds-checked cursor over an immutable byte buffer.

    The reader never copies: :meth:`take` hands back ``memoryview``
    slices and :meth:`array` wraps them in read-only
    :func:`numpy.frombuffer` views, so decoded payloads alias the frame
    buffer (and keep it alive through their ``.base``).
    """

    def __init__(self, data: memoryview) -> None:
        self.data = data
        self.offset = 0

    def take(self, size: int, what: str) -> memoryview:
        if size < 0 or self.offset + size > len(self.data):
            raise WireFormatError(
                "truncated wire batch: needed %d bytes for %s at offset %d "
                "but only %d remain"
                % (size, what, self.offset, len(self.data) - self.offset)
            )
        chunk = self.data[self.offset : self.offset + size]
        self.offset += size
        return chunk

    def unpack(self, fmt: struct.Struct, what: str) -> Tuple[Any, ...]:
        return fmt.unpack(self.take(fmt.size, what))

    def array(self, dtype: np.dtype, count: int, what: str) -> np.ndarray:
        raw = self.take(count * dtype.itemsize, what)
        view = np.frombuffer(raw, dtype=dtype)
        if view.flags.writeable:  # mutable source buffer (e.g. bytearray)
            view.flags.writeable = False
        return view

    @property
    def exhausted(self) -> bool:
        return self.offset == len(self.data)


def _decode_payload(
    reader: _Reader, family: int, count: int, name: str, version: int
) -> Any:
    """Deserialize one attribute payload of the given family."""
    if family == FLOAT_VECTOR:
        return reader.array(_FLOAT, count, "attribute %r values" % name)
    if family == FLOAT_MATRIX:
        (width,) = reader.unpack(_U32, "attribute %r matrix width" % name)
        if width < 1:
            raise WireFormatError(
                "attribute %r: matrix width must be >= 1, got %d" % (name, width)
            )
        values = reader.array(
            _FLOAT, count * width, "attribute %r matrix" % name
        )
        return values.reshape(count, width)
    if family == INT_VECTOR:
        if version < 2:
            return reader.array(_INT, count, "attribute %r labels" % name)
        (itemsize,) = reader.unpack(_U8, "attribute %r label width" % name)
        dtype = int_dtype_for_width(itemsize, name)
        values = reader.array(dtype, count, "attribute %r labels" % name)
        if dtype.itemsize == _INT.itemsize:
            return values
        return values.astype(np.int64)
    if family == OLH_REPORTS:
        seeds = reader.array(_INT, count * 2, "attribute %r seeds" % name)
        buckets = reader.array(_INT, count, "attribute %r buckets" % name)
        return OlhReports(seeds=seeds.reshape(count, 2), buckets=buckets)
    if family == BIT_MATRIX and version >= 2:
        (width,) = reader.unpack(_U32, "attribute %r bit-matrix width" % name)
        if width < 1:
            raise WireFormatError(
                "attribute %r: matrix width must be >= 1, got %d" % (name, width)
            )
        packed = reader.take(
            count * packed_row_bytes(width),
            "attribute %r packed bit matrix" % name,
        )
        return unpack_bit_matrix(packed, count, width, name)
    if family == SPARSE_MATRIX and version >= 2:
        (width,) = reader.unpack(_U32, "attribute %r sparse width" % name)
        if width < 1:
            raise WireFormatError(
                "attribute %r: matrix width must be >= 1, got %d" % (name, width)
            )
        (nnz,) = reader.unpack(_U64, "attribute %r sparse entry count" % name)
        if nnz > count * width:
            raise WireFormatError(
                "attribute %r: sparse block claims %d entries for a %dx%d "
                "matrix" % (name, nnz, count, width)
            )
        indices = reader.array(_INT, nnz, "attribute %r sparse indices" % name)
        values = reader.array(_FLOAT, nnz, "attribute %r sparse values" % name)
        return dense_from_sparse(indices, values, count, width, name)
    raise WireFormatError(
        "attribute %r: unknown payload family %d" % (name, family)
    )


def _check_header(
    magic: bytes, version: int
) -> None:
    if magic != MAGIC:
        raise WireFormatError(
            "not a wire batch: bad magic %r (expected %r)" % (magic, MAGIC)
        )
    if version not in SUPPORTED_WIRE_VERSIONS:
        raise WireFormatError(
            "unsupported wire version %d (this build speaks %s)"
            % (version, ", ".join(map(str, SUPPORTED_WIRE_VERSIONS)))
        )


def read_fingerprint(data: bytes) -> str:
    """Peek the contract fingerprint of an encoded batch (hex form).

    Reads only the fixed-size frame header — no copy of the frame body
    is ever made, so peeking stays O(1) however large the batch is.
    """
    view = memoryview(data)
    if len(view) < _HEADER.size:
        raise WireFormatError(
            "truncated wire batch: needed %d bytes for frame header at "
            "offset 0 but only %d remain" % (_HEADER.size, len(view))
        )
    magic, version, digest, _, _ = _HEADER.unpack_from(view)
    _check_header(bytes(magic), version)
    return bytes(digest).hex()


class AttributeBlock(NamedTuple):
    """One parsed attribute block of a wire frame."""

    name: str
    protocol: str
    count: int
    payload: Any


def iter_attribute_blocks(
    data: bytes, contract: Optional[CollectionContract] = None
) -> Tuple[int, Iterator[AttributeBlock]]:
    """Open a frame for incremental decoding.

    Validates everything frame-global eagerly — magic, version, CRC-32,
    and (when ``contract`` is given) the embedded digest — then returns
    ``(users, blocks)`` where ``blocks`` lazily parses one
    :class:`AttributeBlock` at a time. A consumer such as
    :class:`~repro.transport.CollectionGateway` validates each
    attribute as its block is parsed instead of materializing a whole
    :class:`~repro.session.ReportBatch` first; payloads are read-only
    zero-copy views into ``data``.

    The iterator raises :class:`~repro.exceptions.WireFormatError` on
    malformed blocks, and checks for trailing bytes after yielding the
    last block — fully draining it performs exactly the validation
    :func:`decode_batch` does.
    """
    view = memoryview(data)
    if len(view) < _HEADER.size + _CRC.size:
        raise WireFormatError(
            "truncated wire batch: %d bytes is shorter than the minimal "
            "frame (%d)" % (len(view), _HEADER.size + _CRC.size)
        )
    reader = _Reader(view[: -_CRC.size])
    magic, version, digest, users, n_attributes = reader.unpack(
        _HEADER, "frame header"
    )
    _check_header(bytes(magic), version)
    (stored_crc,) = _CRC.unpack(view[-_CRC.size :])
    if zlib.crc32(reader.data) != stored_crc:
        raise WireFormatError(
            "corrupted wire batch: CRC-32 mismatch (bytes damaged in "
            "transit or at rest)"
        )
    if contract is not None:
        contract.require_digest(bytes(digest), "encoded batch")

    from ..mechanisms.registry import resolve_protocol_name

    def blocks() -> Iterator[AttributeBlock]:
        seen = set()
        for _ in range(n_attributes):
            name_len, protocol_len, count, family = reader.unpack(
                _ATTR_HEAD, "attribute header"
            )
            try:
                name = bytes(
                    reader.take(name_len, "attribute name")
                ).decode("utf-8")
                protocol = bytes(
                    reader.take(protocol_len, "protocol name")
                ).decode("utf-8")
            except UnicodeDecodeError as exc:
                raise WireFormatError(
                    "malformed attribute block: %s" % exc
                ) from None
            if not name or name in seen:
                raise WireFormatError(
                    "malformed attribute block: empty or duplicate name %r"
                    % name
                )
            seen.add(name)
            try:
                protocol = resolve_protocol_name(protocol)
            except KeyError as exc:
                raise WireFormatError(
                    "attribute %r reports an unresolvable protocol: %s"
                    % (name, exc.args[0])
                ) from None
            payload = _decode_payload(reader, family, count, name, version)
            yield AttributeBlock(name, protocol, count, payload)
        if not reader.exhausted:
            raise WireFormatError(
                "malformed wire batch: %d trailing bytes after the last "
                "attribute block" % (len(reader.data) - reader.offset)
            )

    return users, blocks()


def decode_batch(
    data: bytes, contract: Optional[CollectionContract] = None
) -> Any:
    """Decode one frame back into a :class:`~repro.session.ReportBatch`.

    Parameters
    ----------
    data:
        Bytes produced by :func:`encode_batch`.
    contract:
        When given, the embedded digest must match the contract's —
        otherwise :class:`~repro.exceptions.ContractMismatchError` is
        raised *before* any payload is interpreted.

    The decoded payloads are read-only zero-copy views into ``data``
    wherever the wire body already matches the in-memory representation
    (float vectors/matrices, int64 lanes, OLH reports); compressed v2
    families materialize their expanded form. The views keep the frame
    buffer alive, and every fold path upstream treats payloads as
    immutable, so nothing is ever copied on the gateway hot path.

    Raises
    ------
    WireFormatError
        On bad magic, unsupported versions, truncation, CRC failure,
        malformed attribute blocks, or unknown protocol names.
    """
    from ..session.client import ReportBatch

    users, blocks = iter_attribute_blocks(data, contract=contract)
    payloads: Dict[str, Any] = {}
    counts: Dict[str, int] = {}
    protocols: Dict[str, str] = {}
    for block in blocks:
        payloads[block.name] = block.payload
        counts[block.name] = block.count
        protocols[block.name] = block.protocol
    return ReportBatch(
        users=users, payloads=payloads, counts=counts, protocols=protocols
    )
