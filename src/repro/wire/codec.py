"""Versioned binary wire format for report batches.

``encode_batch`` turns a :class:`~repro.session.ReportBatch` into a
self-describing byte string; ``decode_batch`` turns it back, bit for bit.
The format is deliberately simple — little-endian structs and raw array
bytes — and strict: a decoder rejects bad magic, unknown versions,
truncated or corrupted buffers (CRC-32 over the whole frame), malformed
attribute blocks, unknown protocol names, and batches produced under a
different :class:`~repro.wire.CollectionContract`.

Frame layout (version 1, all integers little-endian)::

    offset  size  field
    0       4     magic  b"LDPW"
    4       2     wire version (= 1)
    6       16    contract digest (SHA-256 prefix, see repro.wire.contract)
    22      8     users in the batch (u64)
    30      4     number of attribute blocks (u32)
    34      ...   attribute blocks, in batch order
    end-4   4     CRC-32 of everything before it

Attribute block::

    2     attribute-name length   } utf-8 bytes follow each length
    2     protocol-name length    }
    8     contributing users k (u64)
    1     payload family tag
    ...   family-specific payload

Payload families cover every report representation the registered
protocols produce:

    0  FLOAT_VECTOR  k float64            numeric mechanism reports
    1  FLOAT_MATRIX  u32 width, k*width   histogram / OUE bit matrices
                     float64
    2  INT_VECTOR    k int64              GRR noisy labels
    3  OLH_REPORTS   k*2 int64 seeds,     OLH (seed, bucket) pairs
                     k int64 buckets

Arrays are serialized as raw little-endian bytes, so ``decode(encode(b))``
reproduces payloads exactly — ingesting a decoded batch yields estimates
bit-identical to ingesting the in-memory original.
"""

from __future__ import annotations

import struct
import zlib
from typing import Any, Dict, Optional, Tuple

import numpy as np

from ..exceptions import WireFormatError
from ..freq_oracles.olh import OlhReports
from .contract import DIGEST_SIZE, CollectionContract

MAGIC = b"LDPW"
WIRE_VERSION = 1

FLOAT_VECTOR = 0
FLOAT_MATRIX = 1
INT_VECTOR = 2
OLH_REPORTS = 3

_HEADER = struct.Struct("<4sH%dsQI" % DIGEST_SIZE)
_ATTR_HEAD = struct.Struct("<HHQB")
_U32 = struct.Struct("<I")
_CRC = struct.Struct("<I")

_FLOAT = np.dtype("<f8")
_INT = np.dtype("<i8")


# --------------------------------------------------------------------------
# Encoding
# --------------------------------------------------------------------------


def _encode_payload(name: str, payload: Any, count: int) -> bytes:
    """Serialize one attribute payload as ``family tag + body``."""
    if isinstance(payload, OlhReports):
        seeds = np.ascontiguousarray(payload.seeds, dtype=_INT)
        buckets = np.ascontiguousarray(payload.buckets, dtype=_INT)
        if seeds.shape != (count, 2) or buckets.shape != (count,):
            raise WireFormatError(
                "attribute %r: OLH payload shapes %s/%s disagree with "
                "count %d" % (name, seeds.shape, buckets.shape, count)
            )
        return bytes([OLH_REPORTS]) + seeds.tobytes() + buckets.tobytes()
    array = np.asarray(payload)
    if np.issubdtype(array.dtype, np.integer) and array.ndim == 1:
        if array.shape != (count,):
            raise WireFormatError(
                "attribute %r: payload has %d rows but count is %d"
                % (name, array.shape[0], count)
            )
        return bytes([INT_VECTOR]) + np.ascontiguousarray(array, _INT).tobytes()
    if np.issubdtype(array.dtype, np.floating):
        if array.ndim == 1:
            if array.shape != (count,):
                raise WireFormatError(
                    "attribute %r: payload has %d rows but count is %d"
                    % (name, array.shape[0], count)
                )
            return bytes([FLOAT_VECTOR]) + np.ascontiguousarray(
                array, _FLOAT
            ).tobytes()
        if array.ndim == 2:
            if array.shape[0] != count:
                raise WireFormatError(
                    "attribute %r: payload has %d rows but count is %d"
                    % (name, array.shape[0], count)
                )
            return (
                bytes([FLOAT_MATRIX])
                + _U32.pack(array.shape[1])
                + np.ascontiguousarray(array, _FLOAT).tobytes()
            )
    raise WireFormatError(
        "attribute %r: no wire family for payload of type %s"
        % (name, type(payload).__name__)
    )


def encode_batch(batch: Any, contract: CollectionContract) -> bytes:
    """Encode a :class:`~repro.session.ReportBatch` under ``contract``.

    The contract's digest is embedded in the frame header; decoders
    (and :meth:`LDPServer.ingest_encoded`) verify it before aggregating.
    Raises :class:`WireFormatError` if ``batch`` is not a
    :class:`~repro.session.ReportBatch` at all, or if it names attributes
    or protocols outside the contract.
    """
    from ..session.client import ReportBatch

    if not isinstance(batch, ReportBatch):
        raise WireFormatError(
            "encode_batch expects a repro.session.ReportBatch, got %s"
            % type(batch).__name__
        )
    expected = dict(zip(contract.schema.names, contract.protocols))
    parts = [
        _HEADER.pack(
            MAGIC, WIRE_VERSION, contract.digest, batch.users, len(batch.payloads)
        )
    ]
    for name, payload in batch.payloads.items():
        if name not in expected:
            raise WireFormatError(
                "batch reports attribute %r which the contract does not "
                "declare (contract covers: %s)"
                % (name, ", ".join(contract.schema.names))
            )
        protocol = batch.protocols.get(name, expected[name])
        if protocol != expected[name]:
            raise WireFormatError(
                "attribute %r: batch was produced by protocol %r but the "
                "contract declares %r" % (name, protocol, expected[name])
            )
        count = int(batch.counts[name])
        name_bytes = name.encode("utf-8")
        protocol_bytes = protocol.encode("utf-8")
        body = _encode_payload(name, payload, count)
        parts.append(
            _ATTR_HEAD.pack(len(name_bytes), len(protocol_bytes), count, body[0])
        )
        parts.append(name_bytes)
        parts.append(protocol_bytes)
        parts.append(body[1:])
    frame = b"".join(parts)
    return frame + _CRC.pack(zlib.crc32(frame))


# --------------------------------------------------------------------------
# Decoding
# --------------------------------------------------------------------------


class _Reader:
    """Bounds-checked cursor over an immutable byte buffer."""

    def __init__(self, data: bytes) -> None:
        self.data = data
        self.offset = 0

    def take(self, size: int, what: str) -> bytes:
        if size < 0 or self.offset + size > len(self.data):
            raise WireFormatError(
                "truncated wire batch: needed %d bytes for %s at offset %d "
                "but only %d remain"
                % (size, what, self.offset, len(self.data) - self.offset)
            )
        chunk = self.data[self.offset : self.offset + size]
        self.offset += size
        return chunk

    def unpack(self, fmt: struct.Struct, what: str) -> Tuple[Any, ...]:
        return fmt.unpack(self.take(fmt.size, what))

    def array(self, dtype: np.dtype, count: int, what: str) -> np.ndarray:
        raw = self.take(count * dtype.itemsize, what)
        return np.frombuffer(raw, dtype=dtype).copy()

    @property
    def exhausted(self) -> bool:
        return self.offset == len(self.data)


def _decode_payload(reader: _Reader, family: int, count: int, name: str) -> Any:
    """Deserialize one attribute payload of the given family."""
    if family == FLOAT_VECTOR:
        return reader.array(_FLOAT, count, "attribute %r values" % name)
    if family == FLOAT_MATRIX:
        (width,) = reader.unpack(_U32, "attribute %r matrix width" % name)
        if width < 1:
            raise WireFormatError(
                "attribute %r: matrix width must be >= 1, got %d" % (name, width)
            )
        values = reader.array(
            _FLOAT, count * width, "attribute %r matrix" % name
        )
        return values.reshape(count, width)
    if family == INT_VECTOR:
        return reader.array(_INT, count, "attribute %r labels" % name)
    if family == OLH_REPORTS:
        seeds = reader.array(_INT, count * 2, "attribute %r seeds" % name)
        buckets = reader.array(_INT, count, "attribute %r buckets" % name)
        return OlhReports(seeds=seeds.reshape(count, 2), buckets=buckets)
    raise WireFormatError(
        "attribute %r: unknown payload family %d" % (name, family)
    )


def read_fingerprint(data: bytes) -> str:
    """Peek the contract fingerprint of an encoded batch (hex form)."""
    reader = _Reader(bytes(data))
    magic, version, digest, _, _ = reader.unpack(_HEADER, "frame header")
    if magic != MAGIC:
        raise WireFormatError(
            "not a wire batch: bad magic %r (expected %r)" % (magic, MAGIC)
        )
    if version != WIRE_VERSION:
        raise WireFormatError(
            "unsupported wire version %d (this build speaks %d)"
            % (version, WIRE_VERSION)
        )
    return bytes(digest).hex()


def decode_batch(
    data: bytes, contract: Optional[CollectionContract] = None
) -> Any:
    """Decode one frame back into a :class:`~repro.session.ReportBatch`.

    Parameters
    ----------
    data:
        Bytes produced by :func:`encode_batch`.
    contract:
        When given, the embedded digest must match the contract's —
        otherwise :class:`~repro.exceptions.ContractMismatchError` is
        raised *before* any payload is interpreted.

    Raises
    ------
    WireFormatError
        On bad magic, unsupported versions, truncation, CRC failure,
        malformed attribute blocks, or unknown protocol names.
    """
    from ..session.client import ReportBatch

    data = bytes(data)
    if len(data) < _HEADER.size + _CRC.size:
        raise WireFormatError(
            "truncated wire batch: %d bytes is shorter than the minimal "
            "frame (%d)" % (len(data), _HEADER.size + _CRC.size)
        )
    reader = _Reader(data[: -_CRC.size])
    magic, version, digest, users, n_attributes = reader.unpack(
        _HEADER, "frame header"
    )
    if magic != MAGIC:
        raise WireFormatError(
            "not a wire batch: bad magic %r (expected %r)" % (magic, MAGIC)
        )
    if version != WIRE_VERSION:
        raise WireFormatError(
            "unsupported wire version %d (this build speaks %d)"
            % (version, WIRE_VERSION)
        )
    (stored_crc,) = _CRC.unpack(data[-_CRC.size :])
    if zlib.crc32(reader.data) != stored_crc:
        raise WireFormatError(
            "corrupted wire batch: CRC-32 mismatch (bytes damaged in "
            "transit or at rest)"
        )
    if contract is not None:
        contract.require_digest(bytes(digest), "encoded batch")

    from ..mechanisms.registry import resolve_protocol_name

    payloads: Dict[str, Any] = {}
    counts: Dict[str, int] = {}
    protocols: Dict[str, str] = {}
    for _ in range(n_attributes):
        name_len, protocol_len, count, family = reader.unpack(
            _ATTR_HEAD, "attribute header"
        )
        try:
            name = reader.take(name_len, "attribute name").decode("utf-8")
            protocol = reader.take(protocol_len, "protocol name").decode("utf-8")
        except UnicodeDecodeError as exc:
            raise WireFormatError("malformed attribute block: %s" % exc) from None
        if not name or name in payloads:
            raise WireFormatError(
                "malformed attribute block: empty or duplicate name %r" % name
            )
        try:
            protocol = resolve_protocol_name(protocol)
        except KeyError as exc:
            raise WireFormatError(
                "attribute %r reports an unresolvable protocol: %s"
                % (name, exc.args[0])
            ) from None
        payloads[name] = _decode_payload(reader, family, count, name)
        counts[name] = count
        protocols[name] = protocol
    if not reader.exhausted:
        raise WireFormatError(
            "malformed wire batch: %d trailing bytes after the last "
            "attribute block" % (len(reader.data) - reader.offset)
        )
    return ReportBatch(
        users=users, payloads=payloads, counts=counts, protocols=protocols
    )
