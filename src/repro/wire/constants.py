"""Primitive wire-layout constants shared across the stack.

Single source of truth for the little-endian fixed-width scalar layouts
that every binary artefact in this project is framed with. Composite,
format-specific layouts (frame headers, hello exchanges) stay next to
the codec that owns them — :mod:`repro.wire.codec` for batch frames,
:mod:`repro.transport.framing` for the socket protocol — but both build
on these primitives, and other packages (federation pushes, checkpoint
stores) import from here instead of re-spelling format strings.

The ``wire-constants`` analysis rule (``python -m repro.analysis``)
enforces the discipline: ``struct`` format strings may only be defined
as module-level ``Struct`` constants inside the wire/transport constant
modules, and magic byte literals are defined exactly once.
"""

from __future__ import annotations

import struct

__all__ = ["CRC32", "U8", "U32", "U64"]

#: Unsigned 8-bit scalar (little-endian, as everything on this wire).
U8 = struct.Struct("<B")

#: Unsigned 32-bit scalar.
U32 = struct.Struct("<I")

#: Unsigned 64-bit scalar.
U64 = struct.Struct("<Q")

#: CRC-32 seal prefix — layout-identical to :data:`U32`, named
#: separately because it means "integrity seal", not "a count".
CRC32 = struct.Struct("<I")
