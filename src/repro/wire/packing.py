"""Bit/sparse/narrow-int payload packing for wire format v2.

These helpers implement the compressed payload families introduced by
wire version 2 (see :mod:`repro.wire.codec`):

* **Bit matrices** — OUE reports are ``(k, v)`` float64 matrices whose
  entries are exactly ``0.0`` or ``1.0``; serializing them as float64
  spends 64 bits per bit of information. :func:`pack_bit_matrix` packs
  each row into ``ceil(v / 8)`` bytes via :func:`numpy.packbits`;
  :func:`unpack_bit_matrix` restores the *exact* float64 matrix, so the
  decoded batch folds into estimates bit-identical to the original.
  Padding bits past column ``v`` must be zero — a decoder rejects
  non-canonical padding rather than silently ignoring it.

* **Sparse matrices** — low-density float matrices travel as sorted
  ``(flat index, value)`` pairs (the ``STRUCT<index, value>`` shape used
  by production one-hot encoders). :func:`sparse_from_dense` /
  :func:`dense_from_sparse` convert losslessly; the decoder enforces
  strictly increasing in-range indices and non-zero values so every
  sparse block has exactly one canonical encoding.

* **Narrow integers** — GRR labels live in ``[0, v)`` but v1 shipped
  them as int64. :func:`narrowest_int_dtype` picks the narrowest signed
  dtype that holds a payload's actual range, an 8× saving for any
  domain below 128 categories.

All round-trips are exact: ``unpack(pack(x))`` compares equal to ``x``
element for element *and* in dtype, which is what keeps the wire format
invisible to the bit-identity guarantees upstream.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..exceptions import WireFormatError

#: Fraction of entries below which a float matrix travels as
#: ``(index, value)`` pairs. One sparse entry costs 16 bytes (u64 index
#: + f8 value) against 8 bytes dense, so 0.25 guarantees the sparse
#: block is at most half the dense block before it is chosen.
SPARSE_DENSITY_CUTOFF = 0.25

#: Signed widths a v2 ``INT_VECTOR`` may use, narrowest first.
INT_WIDTHS = (1, 2, 4, 8)

_INT_DTYPES = {width: np.dtype("<i%d" % width) for width in INT_WIDTHS}


def is_bit_matrix(matrix: np.ndarray) -> bool:
    """True when every entry of a float matrix is exactly 0.0 or 1.0."""
    return bool(((matrix == 0.0) | (matrix == 1.0)).all())


def packed_row_bytes(width: int) -> int:
    """Bytes per packed row for a bit matrix of ``width`` columns."""
    return (int(width) + 7) // 8


def pack_bit_matrix(matrix: np.ndarray) -> bytes:
    """Pack a 0/1 float matrix into row-major bits (big-endian per byte).

    Row ``i`` occupies bytes ``[i * ceil(v/8), (i+1) * ceil(v/8))``; the
    final byte of each row is zero-padded past column ``v``. The caller
    is responsible for having checked :func:`is_bit_matrix`.
    """
    bits = np.ascontiguousarray(matrix, dtype=np.uint8)
    return np.packbits(bits, axis=1).tobytes()


def unpack_bit_matrix(buffer, count: int, width: int, name: str) -> np.ndarray:
    """Restore the exact float64 0/1 matrix from packed row bits.

    Raises :class:`~repro.exceptions.WireFormatError` when any padding
    bit past column ``width`` is set — a canonical encoder always leaves
    them zero, so a set padding bit means the block was damaged or
    produced by a non-conforming encoder.
    """
    row_bytes = packed_row_bytes(width)
    packed = np.frombuffer(buffer, dtype=np.uint8).reshape(count, row_bytes)
    bits = np.unpackbits(packed, axis=1)
    if width < row_bytes * 8 and bits[:, width:].any():
        raise WireFormatError(
            "attribute %r: packed bit matrix has set padding bits past "
            "column %d" % (name, width)
        )
    return bits[:, :width].astype(np.float64)


def sparse_from_dense(matrix: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Canonical sparse form: sorted flat indices + their values.

    Indices are row-major positions into the flattened matrix, strictly
    increasing; values are the non-zero entries in the same order.
    """
    flat = np.ascontiguousarray(matrix, dtype=np.float64).ravel()
    indices = np.flatnonzero(flat).astype(np.int64)
    return indices, flat[indices]


def dense_from_sparse(
    indices: np.ndarray,
    values: np.ndarray,
    count: int,
    width: int,
    name: str,
) -> np.ndarray:
    """Rebuild the dense float64 matrix, rejecting non-canonical blocks.

    Strictness mirrors the rest of the decoder: indices must be strictly
    increasing (which also rules out duplicates), every index must land
    inside the ``count * width`` matrix, and explicit zeros are refused —
    a canonical encoder never emits them, so one signals damage.
    """
    total = int(count) * int(width)
    if indices.size:
        if int(indices[0]) < 0 or int(indices[-1]) >= total:
            raise WireFormatError(
                "attribute %r: sparse index out of range for a %dx%d "
                "matrix" % (name, count, width)
            )
        if indices.size > 1 and not bool((np.diff(indices) > 0).all()):
            raise WireFormatError(
                "attribute %r: sparse indices must be strictly increasing"
                % name
            )
        if bool((values == 0.0).any()):
            raise WireFormatError(
                "attribute %r: sparse block stores an explicit zero value"
                % name
            )
    dense = np.zeros(total, dtype=np.float64)
    dense[indices] = values
    return dense.reshape(count, width)


def narrowest_int_dtype(values: np.ndarray) -> np.dtype:
    """Narrowest little-endian signed dtype holding every value exactly."""
    if values.size == 0:
        return _INT_DTYPES[1]
    lo = int(values.min())
    hi = int(values.max())
    for width in INT_WIDTHS:
        info = np.iinfo(_INT_DTYPES[width])
        if info.min <= lo and hi <= info.max:
            return _INT_DTYPES[width]
    raise WireFormatError(
        "integer payload range [%d, %d] does not fit a signed 64-bit "
        "lane" % (lo, hi)
    )


def int_dtype_for_width(itemsize: int, name: str) -> np.dtype:
    """Map a wire ``itemsize`` byte back to its dtype (decoder side)."""
    try:
        return _INT_DTYPES[int(itemsize)]
    except (KeyError, ValueError):
        raise WireFormatError(
            "attribute %r: invalid integer lane width %r (expected one "
            "of %s)" % (name, itemsize, ", ".join(map(str, INT_WIDTHS)))
        ) from None


__all__ = [
    "SPARSE_DENSITY_CUTOFF",
    "INT_WIDTHS",
    "dense_from_sparse",
    "int_dtype_for_width",
    "is_bit_matrix",
    "narrowest_int_dtype",
    "pack_bit_matrix",
    "packed_row_bytes",
    "sparse_from_dense",
    "unpack_bit_matrix",
]
