"""Collection contracts: the client/server agreement as a value object.

A collection round is only meaningful when both sides agree on three
things — the record schema, the privacy budget (``ε`` and the sampled
``m``), and which perturbation protocol serves each attribute. PR 1 left
that agreement out of band ("construct client and server with the same
arguments"); once reports travel between processes that is no longer
enforceable by convention, so this module turns the agreement into a
:class:`CollectionContract` with a stable :attr:`~CollectionContract.digest`
that every encoded batch and saved server state embeds. A server compares
fingerprints before aggregating anything and raises
:class:`~repro.exceptions.ContractMismatchError` on disagreement.

Fingerprint semantics: the digest is the first 16 bytes of the SHA-256 of
a canonical JSON description (sorted keys, exact ``float.hex`` budgets,
attributes in schema order with their protocol names). Two contracts
fingerprint equally iff they describe the same schema shape, the same
budget split, and the same per-attribute protocols — estimator-relevant
configuration only, never process-local state.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from functools import cached_property
from typing import TYPE_CHECKING, Any, Dict, Mapping, Tuple

from ..exceptions import ContractMismatchError, DimensionError

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from ..protocol.budget import BudgetPlan
    from ..session.schema import Schema

#: Version of the canonical description the fingerprint hashes. Bump it
#: whenever the description's structure changes — old fingerprints must
#: not collide with new ones by accident.
CONTRACT_VERSION = 1

#: Bytes of SHA-256 kept as the wire-embedded digest.
DIGEST_SIZE = 16


@dataclass(frozen=True)
class CollectionContract:
    """The schema + budget + protocol agreement of one collection round.

    Attributes
    ----------
    schema:
        The record :class:`~repro.session.Schema`.
    epsilon:
        Collective per-user privacy budget ``ε``.
    sampled_attributes:
        The ``m`` of the protocol (attributes each user reports).
    protocols:
        Per-attribute protocol registry names, in schema order.
    """

    schema: "Schema"
    epsilon: float
    sampled_attributes: int
    protocols: Tuple[str, ...]

    def __post_init__(self) -> None:
        if len(self.protocols) != self.schema.dimensions:
            raise DimensionError(
                "contract names %d protocols for %d attributes"
                % (len(self.protocols), self.schema.dimensions)
            )
        object.__setattr__(self, "epsilon", float(self.epsilon))
        object.__setattr__(
            self, "sampled_attributes", int(self.sampled_attributes)
        )
        object.__setattr__(
            self, "protocols", tuple(str(p) for p in self.protocols)
        )

    @classmethod
    def for_session(
        cls,
        schema: "Schema",
        plan: "BudgetPlan",
        collectors: Mapping[str, Any],
    ) -> "CollectionContract":
        """Contract of a session client/server (shared constructor path)."""
        return cls(
            schema=schema,
            epsilon=plan.epsilon,
            sampled_attributes=plan.sampled_dimensions,
            protocols=tuple(
                collectors[attr.name].protocol_name for attr in schema
            ),
        )

    # ----------------------------------------------------------- fingerprint

    def describe(self) -> Dict[str, Any]:
        """Canonical JSON-able description (the fingerprint's preimage)."""
        attributes = []
        for attr, protocol in zip(self.schema, self.protocols):
            entry: Dict[str, Any] = {
                "name": attr.name,
                "kind": attr.kind,
                "protocol": protocol,
            }
            if attr.kind == "numeric":
                entry["domain"] = [float(edge).hex() for edge in attr.domain]
            else:
                entry["n_categories"] = attr.n_categories
            attributes.append(entry)
        return {
            "contract_version": CONTRACT_VERSION,
            "epsilon": float(self.epsilon).hex(),
            "dimensions": self.schema.dimensions,
            "sampled_attributes": self.sampled_attributes,
            "attributes": attributes,
        }

    @cached_property
    def digest(self) -> bytes:
        """16-byte fingerprint embedded in every encoded batch/state."""
        canonical = json.dumps(
            self.describe(), sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(canonical.encode("utf-8")).digest()[:DIGEST_SIZE]

    @property
    def fingerprint(self) -> str:
        """Hex form of :attr:`digest` (32 characters)."""
        return self.digest.hex()

    def require_digest(self, digest: bytes, source: str) -> None:
        """Raise :class:`ContractMismatchError` unless ``digest`` matches."""
        if digest != self.digest:
            raise ContractMismatchError(
                "%s was produced under contract %s but this side expects %s "
                "(schema, budget, and per-attribute protocols must agree)"
                % (source, bytes(digest).hex(), self.fingerprint)
            )
