"""Wire layer of the distributed collection API.

Everything a collection round needs to leave one Python process:

* :class:`CollectionContract` — the schema + budget + per-attribute
  protocol agreement as a value object with a stable 16-byte fingerprint;
* :func:`encode_batch` / :func:`decode_batch` — a versioned,
  self-describing, CRC-protected binary codec for every report payload
  family (numeric vectors, histogram/OUE matrices, GRR labels, OLH
  ``(seed, bucket)`` pairs), bit-exact on round trip;
* :func:`read_fingerprint` — peek at a frame's contract fingerprint
  without decoding payloads (e.g. for routing).

Servers embed and verify the fingerprint automatically:
:meth:`~repro.session.LDPServer.ingest_encoded` refuses frames produced
under a different contract with
:class:`~repro.exceptions.ContractMismatchError`, and malformed bytes
raise :class:`~repro.exceptions.WireFormatError`.
"""

from .codec import (
    MAGIC,
    WIRE_VERSION,
    decode_batch,
    encode_batch,
    read_fingerprint,
)
from .contract import CONTRACT_VERSION, DIGEST_SIZE, CollectionContract

__all__ = [
    "CONTRACT_VERSION",
    "CollectionContract",
    "DIGEST_SIZE",
    "MAGIC",
    "WIRE_VERSION",
    "decode_batch",
    "encode_batch",
    "read_fingerprint",
]
