"""Wire layer of the distributed collection API.

Everything a collection round needs to leave one Python process:

* :class:`CollectionContract` — the schema + budget + per-attribute
  protocol agreement as a value object with a stable 16-byte fingerprint;
* :func:`encode_batch` / :func:`decode_batch` — a versioned,
  self-describing, CRC-protected binary codec for every report payload
  family (numeric vectors, histogram/OUE matrices, GRR labels, OLH
  ``(seed, bucket)`` pairs), bit-exact on round trip. Version 2 adds
  compressed families — packed 0/1 bit matrices, sparse
  ``(index, value)`` matrices, narrow integer lanes — and a zero-copy
  decode path whose payloads are read-only views into the frame;
* :func:`iter_attribute_blocks` — incremental decoding: validate the
  frame globally, then parse/validate one attribute block at a time;
* :func:`read_fingerprint` — peek at a frame's contract fingerprint
  from the header alone, without touching the payload bytes.

Servers embed and verify the fingerprint automatically:
:meth:`~repro.session.LDPServer.ingest_encoded` refuses frames produced
under a different contract with
:class:`~repro.exceptions.ContractMismatchError`, and malformed bytes
raise :class:`~repro.exceptions.WireFormatError`.
"""

from .codec import (
    BIT_MATRIX,
    FLOAT_MATRIX,
    FLOAT_VECTOR,
    INT_VECTOR,
    MAGIC,
    OLH_REPORTS,
    SPARSE_MATRIX,
    SUPPORTED_WIRE_VERSIONS,
    WIRE_VERSION,
    AttributeBlock,
    decode_batch,
    encode_batch,
    iter_attribute_blocks,
    read_fingerprint,
)
from .contract import CONTRACT_VERSION, DIGEST_SIZE, CollectionContract
from .packing import SPARSE_DENSITY_CUTOFF

__all__ = [
    "AttributeBlock",
    "BIT_MATRIX",
    "CONTRACT_VERSION",
    "CollectionContract",
    "DIGEST_SIZE",
    "FLOAT_MATRIX",
    "FLOAT_VECTOR",
    "INT_VECTOR",
    "MAGIC",
    "OLH_REPORTS",
    "SPARSE_DENSITY_CUTOFF",
    "SPARSE_MATRIX",
    "SUPPORTED_WIRE_VERSIONS",
    "WIRE_VERSION",
    "decode_batch",
    "encode_batch",
    "iter_attribute_blocks",
    "read_fingerprint",
]
