"""Asyncio TCP state pusher: the edge-side end of the federation hop.

:class:`StatePusher` is to a :class:`~repro.federation.RootAggregator`
what :class:`~repro.transport.AsyncReportSender` is to a collection
gateway: it opens a connection, performs the contract handshake (hello
opened by :data:`~repro.transport.framing.STATE_MAGIC`, fingerprints
compared before any payload flows), and then ships epoch-numbered,
CRC-sealed state snapshots — one framed push per epoch, each
acknowledged only once the root has validated and folded it (and, with
a root-side checkpoint store, persisted it durably).

Resume mirrors the report stream: the hello reply carries the *epoch
watermark* — the highest epoch the root already folded for this edge id
— and :meth:`StatePusher.push` numbers pushes ``watermark + 1,
watermark + 2, …``. Because snapshots are cumulative, a reconnecting
edge does not need to replay anything: its next push covers everything
the lost ones would have.
"""

from __future__ import annotations

import asyncio
from typing import Any, Mapping, Optional

from ..exceptions import ContractMismatchError, TransportError
from ..telemetry import MetricsRegistry, emit, event_logger
from ..wire.contract import CollectionContract
from ..transport.framing import (
    HELLO,
    HELLO_REPLY,
    SENDER_ID_SIZE,
    STATE_MAGIC,
    TRANSPORT_MAGIC,
    TRANSPORT_VERSION,
    raise_for_status,
    read_status,
    write_frame,
)
from ..transport.sender import ContractLike, _as_contract, _as_sender_id
from .state_push import PUSH_KIND_SNAPSHOT, encode_state_push

_LOG = event_logger("pusher")


class StatePusher:
    """One open, handshaken push connection to a root aggregator.

    Construct through :meth:`connect`; use as an async context manager
    so half-open connections cannot leak::

        async with await StatePusher.connect(host, port, server, edge_id) as p:
            await p.push(server.state_dict())

    The edge id (16 raw bytes, random unless given) names the edge's
    resumable push stream — pass the same id across reconnects and
    restarts so the root keeps one record for this edge.
    """

    def __init__(
        self,
        contract: CollectionContract,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        edge_id: bytes,
        resume_epoch: int,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.contract = contract
        self.edge_id = edge_id
        #: Highest epoch the root already folded for this edge when the
        #: connection opened; pushes continue at ``resume_epoch + 1``.
        self.resume_epoch = resume_epoch
        self._reader = reader
        self._writer = writer
        self._closed = False
        self._next_epoch = resume_epoch + 1
        #: Highest epoch the root has acknowledged on *this* connection
        #: (starts at the resume watermark). Edges compare it against
        #: their delta base to know whether the root holds the state a
        #: delta would build on.
        self.acked_epoch = resume_epoch
        self.pushes_sent = 0
        self.bytes_sent = 0
        self.telemetry = metrics
        if metrics is not None:
            self._m_pushes_sent = metrics.counter(
                "pusher_pushes_sent_total",
                "State pushes acknowledged by the root",
            )
            self._m_bytes_sent = metrics.counter(
                "pusher_bytes_sent_total",
                "Payload bytes of acknowledged state pushes",
            )
            self._m_push_seconds = metrics.histogram(
                "pusher_push_seconds",
                "Encode + ship + root-ack round trip per push",
            )

    @classmethod
    async def connect(
        cls,
        host: str,
        port: int,
        contract: ContractLike,
        edge_id: Optional[bytes] = None,
        metrics: Optional[MetricsRegistry] = None,
        ssl=None,
    ) -> "StatePusher":
        """Open a push connection and perform the contract handshake.

        Raises :class:`~repro.exceptions.ContractMismatchError` when the
        root aggregates under a different contract — before any payload
        bytes flow — and :class:`~repro.exceptions.TransportError` when
        the peer is not a root aggregator at all (a collection gateway,
        say, which refuses the ``STATE`` magic symmetrically). ``ssl``
        is an optional client-side :class:`ssl.SSLContext` for a
        TLS-serving root.
        """
        agreed = _as_contract(contract)
        stream_id = _as_sender_id(edge_id)
        reader, writer = await asyncio.open_connection(host, port, ssl=ssl)
        try:
            writer.write(
                HELLO.pack(
                    STATE_MAGIC, TRANSPORT_VERSION, agreed.digest, stream_id
                )
            )
            await writer.drain()
            try:
                magic, version, digest, resume_epoch = HELLO_REPLY.unpack(
                    await reader.readexactly(HELLO_REPLY.size)
                )
            except (asyncio.IncompleteReadError, ConnectionError) as exc:
                raise TransportError(
                    "root closed the connection during the handshake: %s"
                    % exc
                ) from None
            if magic != TRANSPORT_MAGIC:
                raise TransportError(
                    "peer is not a root aggregator: bad hello magic %r"
                    % (magic,)
                )
            status, message = await read_status(reader)
            raise_for_status(status, message)
            if version != TRANSPORT_VERSION:
                raise TransportError(
                    "root speaks transport version %d, this edge %d"
                    % (version, TRANSPORT_VERSION)
                )
            if digest != agreed.digest:
                raise ContractMismatchError(
                    "root presents contract %s but this edge aggregates "
                    "under %s" % (bytes(digest).hex(), agreed.fingerprint)
                )
        # repro: allow[broad-except] -- cleanup-and-reraise: the failed
        # handshake's socket must close on every path (including
        # CancelledError) before the original error propagates.
        except BaseException:
            writer.close()
            raise
        if metrics is not None:
            metrics.counter(
                "pusher_connects_total",
                "Successful handshaken connections to a root aggregator",
            ).inc()
        emit(
            _LOG,
            "pusher_connected",
            edge_id=stream_id.hex(),
            host=host,
            port=port,
            resume_epoch=resume_epoch,
        )
        return cls(agreed, reader, writer, stream_id, resume_epoch, metrics)

    # --------------------------------------------------------------- pushing

    async def push(
        self,
        state: Mapping[str, Any],
        counters: Optional[Mapping[str, Any]] = None,
        kind: str = PUSH_KIND_SNAPSHOT,
        base_epoch: int = 0,
    ) -> int:
        """Ship one state push; returns its epoch number.

        ``kind="snapshot"`` (the default) ships ``state`` as the full
        cumulative snapshot; ``kind="delta"`` ships it as a
        :func:`~repro.federation.state_push.state_dict_delta` difference
        over the acknowledged epoch ``base_epoch``. The ack only arrives
        once the root has validated the push, folded it into its edge
        table and — when it checkpoints — persisted it durably, so a
        returned epoch is a *safe* epoch: the reports it covers survive
        anything short of losing the root's storage.
        """
        if self._closed:
            raise TransportError("pusher is closed")
        started = (
            self.telemetry.clock() if self.telemetry is not None else 0.0
        )
        payload = encode_state_push(state, counters, kind, base_epoch)
        epoch = self._next_epoch
        self._next_epoch += 1
        write_frame(self._writer, epoch, payload)
        try:
            await self._writer.drain()
        except ConnectionError as exc:
            raise TransportError("connection lost mid-push: %s" % exc) from None
        status, message = await read_status(self._reader)
        try:
            raise_for_status(status, message)
        # repro: allow[broad-except] -- cleanup-and-reraise: the root
        # closes the stream after an error status, so this side must tear
        # down too (even on CancelledError) before the error propagates.
        except BaseException:
            await self.close()  # the root closes after an error status
            raise
        self.acked_epoch = epoch
        self.pushes_sent += 1
        self.bytes_sent += len(payload)
        if self.telemetry is not None:
            self._m_pushes_sent.inc()
            self._m_bytes_sent.inc(len(payload))
            self._m_push_seconds.observe(self.telemetry.clock() - started)
        emit(
            _LOG,
            "state_pushed",
            edge_id=self.edge_id.hex(),
            epoch=epoch,
            kind=kind,
            bytes=len(payload),
        )
        return epoch

    # --------------------------------------------------------------- closing

    async def close(self) -> None:
        """End the push stream (EOF) and release the connection."""
        if self._closed:
            return
        self._closed = True
        try:
            if self._writer.can_write_eof():
                self._writer.write_eof()
        except (ConnectionError, OSError, RuntimeError):
            pass
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionError, OSError):
            pass

    async def __aenter__(self) -> "StatePusher":
        return self

    async def __aexit__(self, *exc_info: object) -> None:
        await self.close()


#: Edge ids share the sender-id width: 16 raw bytes.
EDGE_ID_SIZE = SENDER_ID_SIZE

__all__ = ["StatePusher", "EDGE_ID_SIZE"]
