"""The ``STATE`` push payload: one edge snapshot on the wire.

A federation push carries an edge aggregator's full, cumulative
:meth:`~repro.session.LDPServer.state_dict` — *not* a delta. The edge
keeps accumulating locally and ships a bigger snapshot each epoch; the
root keeps only the newest epoch per edge and merges across edges at
read time. Cumulative snapshots are what make the tier idempotent under
every failure mode: a re-pushed epoch is a byte-identical no-op, a
skipped epoch is covered by the next one, and an edge that crashed and
resumed from its checkpoint re-ships everything it durably held.

Payload layout (inside one transport frame, ``u64 epoch`` in the frame
header)::

    u32 CRC-32 | canonical-JSON push document

The document embeds the contract fingerprint (lifted out of the state
snapshot) so the root refuses a foreign-contract push before touching
its aggregation state, plus the edge's plain gateway counters — the root
aggregates those across edges in its own ``STATS`` snapshot, so one
admin request covers the whole topology. Damage (CRC failure, malformed
JSON, missing fields) raises
:class:`~repro.exceptions.WireFormatError`; a foreign contract raises
:class:`~repro.exceptions.ContractMismatchError` naming both
fingerprints.
"""

from __future__ import annotations

import json
import struct
import zlib
from typing import Any, Dict, Mapping, Optional, Tuple

from ..exceptions import WireFormatError
from ..wire.contract import CollectionContract

#: Format tag and version of the push document.
PUSH_FORMAT = "repro-federation-state-push"
PUSH_VERSION = 1

_CRC_HEAD = struct.Struct("<I")


def encode_state_push(
    state: Mapping[str, Any],
    counters: Optional[Mapping[str, Any]] = None,
) -> bytes:
    """Serialize one state push (CRC-sealed canonical JSON).

    ``state`` is an :meth:`~repro.session.LDPServer.state_dict`
    snapshot; ``counters`` are the edge's plain gateway counters (JSON
    scalars), carried for root-side aggregation only — they never touch
    the estimate.
    """
    fingerprint = state.get("fingerprint") if isinstance(state, Mapping) else None
    if not isinstance(fingerprint, str):
        raise WireFormatError(
            "a state push needs a state_dict snapshot (with its embedded "
            "fingerprint), got %r" % (state,)
        )
    document = {
        "format": PUSH_FORMAT,
        "push_version": PUSH_VERSION,
        "fingerprint": fingerprint,
        "state": dict(state),
        "counters": dict(counters) if counters else {},
    }
    try:
        blob = json.dumps(document, sort_keys=True).encode("utf-8")
    except (TypeError, ValueError) as exc:
        raise WireFormatError(
            "state push is not JSON-serializable: %s" % exc
        ) from None
    return _CRC_HEAD.pack(zlib.crc32(blob) & 0xFFFFFFFF) + blob


def decode_state_push(
    payload: bytes, contract: CollectionContract
) -> Tuple[Dict[str, Any], Dict[str, Any]]:
    """Verify and unpack one push payload as ``(state, counters)``.

    The CRC seal, the document structure and the contract fingerprint
    are all checked before anything is returned — a root never folds
    bytes it could not fully validate.
    """
    if len(payload) < _CRC_HEAD.size:
        raise WireFormatError(
            "state push of %d bytes is shorter than its CRC header"
            % len(payload)
        )
    (crc,) = _CRC_HEAD.unpack_from(payload)
    blob = payload[_CRC_HEAD.size:]
    if zlib.crc32(blob) & 0xFFFFFFFF != crc:
        raise WireFormatError(
            "state push failed its CRC check: the payload was corrupted "
            "in flight or truncated"
        )
    try:
        document = json.loads(blob.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as exc:
        raise WireFormatError(
            "state push does not hold a valid JSON document: %s" % exc
        ) from None
    if not isinstance(document, dict) or document.get("format") != PUSH_FORMAT:
        raise WireFormatError(
            "not a %r document: %r" % (PUSH_FORMAT, document)
        )
    if document.get("push_version") != PUSH_VERSION:
        raise WireFormatError(
            "unsupported state push version %r (this build speaks %d)"
            % (document.get("push_version"), PUSH_VERSION)
        )
    fingerprint = document.get("fingerprint")
    try:
        digest = bytes.fromhex(fingerprint)
    except (TypeError, ValueError):
        raise WireFormatError(
            "malformed state push fingerprint: %r" % (fingerprint,)
        ) from None
    contract.require_digest(digest, "federation state push")
    state = document.get("state")
    if not isinstance(state, dict):
        raise WireFormatError(
            "state push carries no state snapshot: %r" % (state,)
        )
    counters = document.get("counters")
    if not isinstance(counters, dict):
        raise WireFormatError(
            "state push carries malformed counters: %r" % (counters,)
        )
    return state, counters
