"""The ``STATE`` push payload: one edge snapshot — or delta — on the wire.

A federation push carries an edge aggregator's
:meth:`~repro.session.LDPServer.state_dict` in one of two kinds:

``snapshot``
    The full, cumulative state. The root replaces its record for the
    edge. Snapshots are what make the tier idempotent under every
    failure mode: a re-pushed epoch is a byte-identical no-op, a
    skipped epoch is covered by the next one, and an edge that crashed
    and resumed from its checkpoint re-ships everything it durably held.
``delta``
    Only the accumulator growth since ``base_epoch`` — the last epoch
    the root acknowledged to this edge. Because every accumulator in a
    state snapshot is exactly additive (big-integer sums, int64
    counts), the difference of two snapshots is itself a valid
    snapshot, and the root adds it to its stored record through the
    same exact merge; ``stored + (current − stored) == current`` holds
    bit for bit. Deltas exist purely to cut upstream bytes: an edge
    falls back to a full snapshot on its first push, after any
    reconnect whose re-learned watermark disagrees with its base, and
    whenever a delta cannot be formed or is refused.

Payload layout (inside one transport frame, ``u64 epoch`` in the frame
header)::

    u32 CRC-32 | canonical-JSON push document          (version 1)
    u32 CRC-32 | zlib(canonical-JSON push document)    (version 2)

Version-2 documents also tokenize the exact accumulator big-integers as
``[-]<hex significand>p<shift>`` before serializing: a column sum is a
handful of significant bits followed by the ~1100 zero bits of the
fixed-point scale, so the token is ~20 characters where the decimal
digits were ~340 — the dominant share of a push's bytes. Both
transforms are lossless (the decoded state is the exact dict the edge
encoded) and both are distinguishable on sight: a raw version-1 JSON
document starts with ``{``, a zlib stream never does.

The document embeds the contract fingerprint (lifted out of the state
snapshot) so the root refuses a foreign-contract push before touching
its aggregation state, plus the edge's plain gateway counters — the root
aggregates those across edges in its own ``STATS`` snapshot, so one
admin request covers the whole topology. Counters are always cumulative
(the root replaces them even under a delta push). Damage (CRC failure,
malformed JSON, missing fields, an impossible kind/base_epoch pair)
raises :class:`~repro.exceptions.WireFormatError`; a foreign contract
raises :class:`~repro.exceptions.ContractMismatchError` naming both
fingerprints. Version-1 documents (no ``kind``/``base_epoch`` fields)
still decode — they are full snapshots by definition.
"""

from __future__ import annotations

import json
import zlib
from typing import Any, Dict, Mapping, NamedTuple, Optional

from ..exceptions import StateDeltaError, WireFormatError
from ..wire.constants import CRC32
from ..wire.contract import CollectionContract

#: Format tag and version of the push document.
PUSH_FORMAT = "repro-federation-state-push"
PUSH_VERSION = 2

#: Push document versions this build decodes.
SUPPORTED_PUSH_VERSIONS = (1, 2)

#: The two push kinds a version-2 document may carry.
PUSH_KIND_SNAPSHOT = "snapshot"
PUSH_KIND_DELTA = "delta"

_CRC_HEAD = CRC32

#: Decompression bound for version-2 documents (bomb guard).
MAX_PUSH_DOCUMENT_BYTES = 1 << 28

#: Minimum trailing zero bits before an accumulator integer is worth
#: tokenizing as ``<hex significand>p<shift>``.
_MIN_TOKEN_SHIFT = 16


def _hexp_token(value: Any) -> Any:
    """Tokenize one exact column sum for the wire (lossless).

    ``sig * 2**shift`` with the significand in hex: the fixed-point
    accumulators carry ~1100 trailing zero bits of scale, so the token
    is ~20 characters where the decimal digits were ~340. Values that
    are not large even integers pass through unchanged.
    """
    if not isinstance(value, int) or isinstance(value, bool) or value == 0:
        return value
    magnitude = -value if value < 0 else value
    shift = (magnitude & -magnitude).bit_length() - 1
    if shift < _MIN_TOKEN_SHIFT:
        return value
    return "%s%xp%d" % ("-" if value < 0 else "", magnitude >> shift, shift)


def _hexp_value(entry: Any) -> Any:
    """Invert :func:`_hexp_token`; non-string entries pass through."""
    if not isinstance(entry, str):
        return entry
    body = entry[1:] if entry.startswith("-") else entry
    significand, sep, shift = body.partition("p")
    try:
        value = int(significand, 16) << int(shift)
    except (TypeError, ValueError):
        raise WireFormatError(
            "malformed accumulator token %r" % (entry,)
        ) from None
    if not sep or int(shift) < 0:
        raise WireFormatError("malformed accumulator token %r" % (entry,))
    return -value if entry.startswith("-") else value


def _transform_sums(state: Any, transform: Any) -> Any:
    """Rewrite every exact-sum column list of a state document.

    Structure-preserving and forgiving: anything not shaped like a
    state document passes through untouched (downstream validation owns
    rejecting it), so the codec never masks a malformed push behind a
    transform error.
    """
    if not isinstance(state, dict) or not isinstance(
        state.get("attributes"), dict
    ):
        return state
    attributes = {}
    for name, snapshot in state["attributes"].items():
        if (
            isinstance(snapshot, dict)
            and isinstance(snapshot.get("sums"), dict)
            and isinstance(snapshot["sums"].get("sums"), list)
        ):
            sums = dict(snapshot["sums"])
            sums["sums"] = [transform(value) for value in sums["sums"]]
            snapshot = dict(snapshot)
            snapshot["sums"] = sums
        attributes[name] = snapshot
    packed = dict(state)
    packed["attributes"] = attributes
    return packed


class StatePush(NamedTuple):
    """One decoded push: its state payload and how to fold it.

    ``state`` is a full cumulative snapshot when ``kind`` is
    ``"snapshot"`` and an additive difference over the edge's state at
    ``base_epoch`` when ``kind`` is ``"delta"``. ``counters`` are always
    the edge's cumulative gateway counters.
    """

    state: Dict[str, Any]
    counters: Dict[str, Any]
    kind: str
    base_epoch: int


def encode_state_push(
    state: Mapping[str, Any],
    counters: Optional[Mapping[str, Any]] = None,
    kind: str = PUSH_KIND_SNAPSHOT,
    base_epoch: int = 0,
) -> bytes:
    """Serialize one state push (CRC-sealed canonical JSON).

    ``state`` is an :meth:`~repro.session.LDPServer.state_dict`
    snapshot — or, for ``kind="delta"``, a :func:`state_dict_delta`
    difference, with ``base_epoch`` naming the acknowledged epoch the
    delta builds on. ``counters`` are the edge's plain gateway counters
    (JSON scalars), carried for root-side aggregation only — they never
    touch the estimate.
    """
    fingerprint = state.get("fingerprint") if isinstance(state, Mapping) else None
    if not isinstance(fingerprint, str):
        raise WireFormatError(
            "a state push needs a state_dict snapshot (with its embedded "
            "fingerprint), got %r" % (state,)
        )
    if kind not in (PUSH_KIND_SNAPSHOT, PUSH_KIND_DELTA):
        raise WireFormatError("unknown push kind %r" % (kind,))
    base = int(base_epoch)
    if kind == PUSH_KIND_DELTA and base < 1:
        raise WireFormatError(
            "a delta push must name the acknowledged epoch it builds on, "
            "got base_epoch=%d" % base
        )
    if kind == PUSH_KIND_SNAPSHOT and base != 0:
        raise WireFormatError(
            "a snapshot push carries no base epoch, got base_epoch=%d" % base
        )
    document = {
        "format": PUSH_FORMAT,
        "push_version": PUSH_VERSION,
        "fingerprint": fingerprint,
        "kind": kind,
        "base_epoch": base,
        "state": _transform_sums(dict(state), _hexp_token),
        "counters": dict(counters) if counters else {},
    }
    try:
        blob = json.dumps(document, sort_keys=True).encode("utf-8")
    except (TypeError, ValueError) as exc:
        raise WireFormatError(
            "state push is not JSON-serializable: %s" % exc
        ) from None
    blob = zlib.compress(blob, 6)
    return _CRC_HEAD.pack(zlib.crc32(blob) & 0xFFFFFFFF) + blob


def decode_state_push(
    payload: bytes, contract: CollectionContract
) -> StatePush:
    """Verify and unpack one push payload as a :class:`StatePush`.

    The CRC seal, the document structure, the contract fingerprint and
    the kind/base_epoch pairing are all checked before anything is
    returned — a root never folds bytes it could not fully validate.
    Version-1 documents decode as ``kind="snapshot"``, ``base_epoch=0``.
    """
    if len(payload) < _CRC_HEAD.size:
        raise WireFormatError(
            "state push of %d bytes is shorter than its CRC header"
            % len(payload)
        )
    (crc,) = _CRC_HEAD.unpack_from(payload)
    blob = payload[_CRC_HEAD.size:]
    if zlib.crc32(blob) & 0xFFFFFFFF != crc:
        raise WireFormatError(
            "state push failed its CRC check: the payload was corrupted "
            "in flight or truncated"
        )
    if not blob.startswith(b"{"):
        # Version 2 compresses the document; version 1 shipped it raw
        # (and a JSON object can never open with a zlib header byte).
        decompressor = zlib.decompressobj()
        try:
            blob = decompressor.decompress(blob, MAX_PUSH_DOCUMENT_BYTES)
        except zlib.error as exc:
            raise WireFormatError(
                "state push does not hold a valid compressed document: %s"
                % exc
            ) from None
        if decompressor.unconsumed_tail:
            raise WireFormatError(
                "state push document exceeds %d bytes decompressed"
                % MAX_PUSH_DOCUMENT_BYTES
            )
    try:
        document = json.loads(blob.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as exc:
        raise WireFormatError(
            "state push does not hold a valid JSON document: %s" % exc
        ) from None
    if not isinstance(document, dict) or document.get("format") != PUSH_FORMAT:
        raise WireFormatError(
            "not a %r document: %r" % (PUSH_FORMAT, document)
        )
    version = document.get("push_version")
    if version not in SUPPORTED_PUSH_VERSIONS:
        raise WireFormatError(
            "unsupported state push version %r (this build speaks %s)"
            % (version, list(SUPPORTED_PUSH_VERSIONS))
        )
    fingerprint = document.get("fingerprint")
    try:
        digest = bytes.fromhex(fingerprint)
    except (TypeError, ValueError):
        raise WireFormatError(
            "malformed state push fingerprint: %r" % (fingerprint,)
        ) from None
    contract.require_digest(digest, "federation state push")
    if version == 1:
        kind, base_epoch = PUSH_KIND_SNAPSHOT, 0
    else:
        kind = document.get("kind")
        if kind not in (PUSH_KIND_SNAPSHOT, PUSH_KIND_DELTA):
            raise WireFormatError(
                "state push carries unknown kind %r" % (kind,)
            )
        base_epoch = document.get("base_epoch")
        if (
            not isinstance(base_epoch, int)
            or isinstance(base_epoch, bool)
            or base_epoch < 0
        ):
            raise WireFormatError(
                "malformed push base epoch: %r" % (base_epoch,)
            )
        if kind == PUSH_KIND_DELTA and base_epoch < 1:
            raise WireFormatError(
                "a delta push must name the acknowledged epoch it builds "
                "on, got base_epoch=%d" % base_epoch
            )
        if kind == PUSH_KIND_SNAPSHOT and base_epoch != 0:
            raise WireFormatError(
                "a snapshot push carries no base epoch, got base_epoch=%d"
                % base_epoch
            )
    state = document.get("state")
    if not isinstance(state, dict):
        raise WireFormatError(
            "state push carries no state snapshot: %r" % (state,)
        )
    if version >= 2:
        state = _transform_sums(state, _hexp_value)
    counters = document.get("counters")
    if not isinstance(counters, dict):
        raise WireFormatError(
            "state push carries malformed counters: %r" % (counters,)
        )
    return StatePush(state, counters, kind, base_epoch)


# --------------------------------------------------------------------------
# Delta arithmetic over state_dict snapshots
# --------------------------------------------------------------------------


def _delta_oracle(name: str, cur: Mapping, prev: Mapping) -> Dict[str, Any]:
    counts_cur = cur["counts"]
    counts_prev = prev["counts"]
    if len(counts_cur) != len(counts_prev):
        raise StateDeltaError(
            "attribute %r: count widths differ (%d vs %d)"
            % (name, len(counts_cur), len(counts_prev))
        )
    counts = [int(a) - int(b) for a, b in zip(counts_cur, counts_prev)]
    users = int(cur["users"]) - int(prev["users"])
    if users < 0 or any(count < 0 for count in counts):
        raise StateDeltaError(
            "attribute %r: the earlier snapshot is not a prefix of the "
            "newer one" % name
        )
    return {"kind": "oracle-counts", "counts": counts, "users": users}


def _delta_sums(name: str, cur: Mapping, prev: Mapping) -> Dict[str, Any]:
    sums_cur, sums_prev = cur["sums"], prev["sums"]
    for field in ("kind", "width", "scale_bits"):
        if sums_cur.get(field) != sums_prev.get(field):
            raise StateDeltaError(
                "attribute %r: accumulator %s differs (%r vs %r)"
                % (name, field, sums_cur.get(field), sums_prev.get(field))
            )
    acc_cur, acc_prev = sums_cur["sums"], sums_prev["sums"]
    if len(acc_cur) != len(acc_prev):
        raise StateDeltaError(
            "attribute %r: accumulator widths differ (%d vs %d)"
            % (name, len(acc_cur), len(acc_prev))
        )
    rows = int(sums_cur["rows"]) - int(sums_prev["rows"])
    if rows < 0:
        raise StateDeltaError(
            "attribute %r: the earlier snapshot is not a prefix of the "
            "newer one" % name
        )
    return {
        "kind": cur["kind"],
        "sums": {
            "kind": sums_cur["kind"],
            "width": sums_cur["width"],
            "rows": rows,
            "scale_bits": sums_cur["scale_bits"],
            # Column sums may legitimately go negative per column (the
            # perturbed reports are signed); only the row/user counts
            # are monotone.
            "sums": [int(a) - int(b) for a, b in zip(acc_cur, acc_prev)],
        },
    }


_DELTA_BY_KIND = {
    "oracle-counts": _delta_oracle,
    "numeric-sum": _delta_sums,
    "histogram-sum": _delta_sums,
}


def state_dict_delta(
    current: Mapping[str, Any], previous: Mapping[str, Any]
) -> Dict[str, Any]:
    """The exact accumulator growth from ``previous`` to ``current``.

    Both arguments are :meth:`~repro.session.LDPServer.state_dict`
    snapshots of the *same* server at two points in time (``previous``
    earlier). The result is itself a valid state document: merging it
    into ``previous`` with the exact big-integer merge reproduces
    ``current`` bit for bit, which is the invariant delta pushes ride.

    Raises :class:`~repro.exceptions.StateDeltaError` (a
    :class:`ValueError`) whenever a trustworthy delta cannot be
    formed — mismatched contracts or formats, an attribute kind this
    builder does not know how to difference, or any monotone counter
    (users, rows, oracle counts) that went *down*, which proves the
    snapshots are not a prefix pair. Callers treat that as "ship a full
    snapshot instead", never as corruption.
    """
    try:
        for document in (current, previous):
            if not isinstance(document, Mapping):
                raise StateDeltaError("state snapshots must be mappings")
        for field in ("format", "state_version", "fingerprint"):
            if current.get(field) != previous.get(field):
                raise StateDeltaError(
                    "snapshot %s differs (%r vs %r): not the same round"
                    % (field, current.get(field), previous.get(field))
                )
        if not isinstance(current.get("fingerprint"), str):
            raise StateDeltaError("snapshots carry no contract fingerprint")
        users = int(current["users"]) - int(previous["users"])
        if users < 0:
            raise StateDeltaError(
                "the earlier snapshot covers more users than the newer one"
            )
        attrs_cur, attrs_prev = current["attributes"], previous["attributes"]
        if set(attrs_cur) != set(attrs_prev):
            raise StateDeltaError(
                "snapshot attribute sets differ: %s vs %s"
                % (sorted(attrs_cur), sorted(attrs_prev))
            )
        attributes: Dict[str, Any] = {}
        for name in attrs_cur:
            cur, prev = attrs_cur[name], attrs_prev[name]
            kind = cur.get("kind")
            if kind != prev.get("kind"):
                raise StateDeltaError(
                    "attribute %r changed kind (%r vs %r)"
                    % (name, kind, prev.get("kind"))
                )
            builder = _DELTA_BY_KIND.get(kind)
            if builder is None:
                raise StateDeltaError(
                    "attribute %r: no delta rule for state kind %r"
                    % (name, kind)
                )
            attributes[name] = builder(name, cur, prev)
    except (KeyError, TypeError) as exc:
        raise StateDeltaError("malformed state snapshot: %s" % exc) from None
    return {
        "format": current["format"],
        "state_version": current["state_version"],
        "fingerprint": current["fingerprint"],
        "contract": current.get("contract"),
        "users": users,
        "attributes": attributes,
    }
