"""Federation checkpoint documents: the root's per-edge epoch table.

What a :class:`~repro.federation.RootAggregator` persists between
pushes: for every edge id, the newest epoch it folded and that epoch's
full state snapshot (plus the edge's reported counters, observability
only). Because edge snapshots are cumulative and the root keeps exactly
one per edge, this document *is* the root's entire aggregation state —
a restarted root recovers it, answers each reconnecting edge with its
epoch watermark, and the round continues with estimates bit-identical
to one that never crashed.

Structural damage raises
:class:`~repro.exceptions.CheckpointCorruptError`; a checkpoint written
under a different collection contract raises
:class:`~repro.exceptions.ContractMismatchError` naming both
fingerprints — the same strictness every other durable artefact gets.
"""

from __future__ import annotations

from typing import Any, Dict, Mapping, Tuple

from ..exceptions import CheckpointCorruptError
from ..wire.contract import CollectionContract

FEDERATION_FORMAT = "repro-federation-round"
FEDERATION_VERSION = 1

#: One edge's record at the root: ``(epoch, state, counters)``.
EdgeRecord = Tuple[int, Dict[str, Any], Dict[str, Any]]


def federation_checkpoint_document(
    contract: CollectionContract,
    edges: Mapping[bytes, EdgeRecord],
) -> Dict[str, Any]:
    """Build the checkpoint document for one in-flight federated round."""
    return {
        "format": FEDERATION_FORMAT,
        "federation_version": FEDERATION_VERSION,
        "fingerprint": contract.fingerprint,
        "edges": {
            edge_id.hex(): {
                "epoch": int(epoch),
                "state": dict(state),
                "counters": dict(counters),
            }
            for edge_id, (epoch, state, counters) in edges.items()
        },
    }


def parse_federation_checkpoint(
    document: Mapping[str, Any],
    contract: CollectionContract,
) -> Dict[bytes, EdgeRecord]:
    """Validate a federation checkpoint and unpack its edge table.

    Returns the per-edge records keyed by raw edge-id bytes again.
    """
    if (
        not isinstance(document, Mapping)
        or document.get("format") != FEDERATION_FORMAT
    ):
        raise CheckpointCorruptError(
            "not a %r document: %r" % (FEDERATION_FORMAT, document)
        )
    if document.get("federation_version") != FEDERATION_VERSION:
        raise CheckpointCorruptError(
            "unsupported federation checkpoint version %r (this build "
            "speaks %d)"
            % (document.get("federation_version"), FEDERATION_VERSION)
        )
    fingerprint = document.get("fingerprint")
    try:
        digest = bytes.fromhex(fingerprint)
    except (TypeError, ValueError):
        raise CheckpointCorruptError(
            "malformed federation checkpoint fingerprint: %r"
            % (fingerprint,)
        ) from None
    contract.require_digest(digest, "federation checkpoint")
    raw_edges = document.get("edges")
    if not isinstance(raw_edges, Mapping):
        raise CheckpointCorruptError(
            "federation checkpoint carries no edge table: %r" % (raw_edges,)
        )
    edges: Dict[bytes, EdgeRecord] = {}
    for key, record in raw_edges.items():
        try:
            edge_id = bytes.fromhex(key)
        except (TypeError, ValueError):
            raise CheckpointCorruptError(
                "malformed edge id %r in federation checkpoint" % (key,)
            ) from None
        if not isinstance(record, Mapping):
            raise CheckpointCorruptError(
                "malformed edge record %r for edge %s" % (record, key)
            )
        epoch = record.get("epoch")
        if not isinstance(epoch, int) or isinstance(epoch, bool) or epoch < 1:
            raise CheckpointCorruptError(
                "malformed epoch %r for edge %s" % (epoch, key)
            )
        state = record.get("state")
        if not isinstance(state, Mapping):
            raise CheckpointCorruptError(
                "edge %s carries no state snapshot in federation "
                "checkpoint" % key
            )
        counters = record.get("counters")
        if not isinstance(counters, Mapping):
            raise CheckpointCorruptError(
                "edge %s carries malformed counters in federation "
                "checkpoint" % key
            )
        edges[edge_id] = (epoch, dict(state), dict(counters))
    return edges
