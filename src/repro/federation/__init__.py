"""Hierarchical multi-gateway federation: edges shipping state upstream.

One collection gateway scales to the capacity of one event loop; a
planet-scale round does not fit in it. This package adds the missing
tier: *edge aggregators* (:class:`EdgeAggregator`) each run a full local
:class:`~repro.transport.CollectionGateway` — clients connect to the
nearest edge exactly as they would to a standalone gateway — fold
accepted frames into their own shards, and periodically push merged
:meth:`~repro.session.LDPServer.state_dict` state upstream to a single
:class:`RootAggregator` over the existing framed socket protocol (a
``STATE`` hello instead of a report hello, one CRC-sealed push per
epoch) — as the exact accumulator *delta* since the last acknowledged
epoch when the root provably holds that base, and as the full cumulative
snapshot otherwise. The root installs either kind as the edge's newest
cumulative state (deltas are added to the stored record through the
exact merge) and merges across edges with the big-integer accumulation, so the
federated estimate is **bit-identical** to one-shot ingestion of every
client's reports — for any edge count, any client-to-edge assignment,
any push cadence, and across edge or root crash-restarts (both tiers
resume from :mod:`repro.storage` checkpoints; the root acks a push only
after folding it durably when a store is configured).

Both hops take an optional :class:`ssl.SSLContext`, so the client→edge
and edge→root links can be TLS independently. Everything instruments
against :mod:`repro.telemetry`: push/fold/dedup/rejection counters,
per-edge epoch gauges, and a root ``STATS`` snapshot that aggregates the
gateway counters of the whole topology.

Typical round::

    root = await serve_root(schema, epsilon, store=open_store(uri))
    edge = await EdgeAggregator(schema, epsilon, push_every_frames=32)\\
        .start("127.0.0.1", root.port)
    # ... clients replay_frames(...) against edge.port ...
    await edge.stop()          # final cumulative push, always
    await root.wait_for_users(n)
    estimate = root.estimate() # == one-shot, bit for bit
    await root.stop()
"""

from .checkpoint import (
    FEDERATION_FORMAT,
    FEDERATION_VERSION,
    EdgeRecord,
    federation_checkpoint_document,
    parse_federation_checkpoint,
)
from .edge import EdgeAggregator
from .pusher import EDGE_ID_SIZE, StatePusher
from .root import RootAggregator, serve_root
from .state_push import (
    PUSH_FORMAT,
    PUSH_KIND_DELTA,
    PUSH_KIND_SNAPSHOT,
    PUSH_VERSION,
    SUPPORTED_PUSH_VERSIONS,
    StatePush,
    decode_state_push,
    encode_state_push,
    state_dict_delta,
)

__all__ = [
    "EDGE_ID_SIZE",
    "FEDERATION_FORMAT",
    "FEDERATION_VERSION",
    "PUSH_FORMAT",
    "PUSH_KIND_DELTA",
    "PUSH_KIND_SNAPSHOT",
    "PUSH_VERSION",
    "SUPPORTED_PUSH_VERSIONS",
    "EdgeAggregator",
    "EdgeRecord",
    "RootAggregator",
    "StatePush",
    "StatePusher",
    "decode_state_push",
    "encode_state_push",
    "federation_checkpoint_document",
    "parse_federation_checkpoint",
    "serve_root",
    "state_dict_delta",
]
