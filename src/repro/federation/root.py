"""The upstream end of the federation tier: fold edge pushes, serve one estimate.

:class:`RootAggregator` is a TCP server speaking the ``STATE`` push side
of the framed socket protocol (:mod:`repro.transport.framing`). Edge
aggregators connect with a hello opened by ``STATE_MAGIC`` carrying
their edge id, and then push epoch-numbered, CRC-sealed, contract-
fingerprint-checked :meth:`~repro.session.LDPServer.state_dict`
payloads — full cumulative snapshots, or *deltas* over the edge's last
acknowledged epoch, which the root adds to its stored record through
the exact big-integer merge before installing the sum as the new
cumulative snapshot. Either way the root keeps exactly one record per
edge — the newest epoch's cumulative state — and merges across edges at
read time with the exact big-integer accumulation, so the federated
estimate is a pure function of the report multiset: bit-identical to
one-shot ingestion regardless of edge count, push ordering, duplicate
pushes, push kinds, or mid-round edge restarts.

Idempotency is the load-bearing property. The handshake reply's resume
watermark is the highest epoch the root folded for that edge; a push at
or below it is acknowledged without folding (``pushes_deduped``), so
retries and reconnects are always safe. With a checkpoint store
configured, every fold is persisted *before* its ack goes out — an edge
that heard OK knows its snapshot survives a root SIGKILL, and a
restarted root recovers the edge table and resumes the round exactly.
"""

from __future__ import annotations

import asyncio
import json
import logging
from typing import Any, Dict, Optional, Set

from ..exceptions import (
    ContractMismatchError,
    TransportError,
    WireFormatError,
)
from ..session.client import ProtocolSpec
from ..session.schema import Schema
from ..session.server import LDPServer, Postprocessor, SessionEstimate
from ..storage import CheckpointStore
from ..storage.base import encode_document
from ..telemetry import MetricsRegistry, emit, event_logger
from ..transport.framing import (
    DEFAULT_MAX_FRAME_BYTES,
    HELLO,
    HELLO_REPLY,
    STATE_MAGIC,
    STATS_MAGIC,
    STATUS_CONTRACT_MISMATCH,
    STATUS_OK,
    STATUS_TRANSPORT_ERROR,
    STATUS_WIRE_ERROR,
    TRANSPORT_MAGIC,
    TRANSPORT_VERSION,
    pack_status,
    read_frame,
)
from ..wire.contract import CollectionContract
from .checkpoint import (
    EdgeRecord,
    federation_checkpoint_document,
    parse_federation_checkpoint,
)
from .state_push import PUSH_KIND_DELTA, decode_state_push


class RootAggregator:
    """Terminal aggregator of a multi-gateway federated round.

    Parameters
    ----------
    schema, epsilon, sampled_attributes, protocols:
        The collection contract, exactly as for
        :class:`~repro.session.LDPServer` — every edge (and every client
        behind every edge) must operate under the same one.
    max_frame_bytes:
        Reject pushes longer than this before allocating them.
    store:
        Optional :class:`~repro.storage.CheckpointStore`. With it every
        folded push is durable *before* its ack (an acknowledged epoch
        survives SIGKILL), and :meth:`start` recovers the newest intact
        edge table. The caller owns the store's lifetime.
    metrics:
        Optional :class:`~repro.telemetry.MetricsRegistry` (one is
        created when omitted, so :meth:`stats_snapshot` and the
        ``STATS`` socket request always work).
    """

    def __init__(
        self,
        schema: Schema,
        epsilon: float,
        sampled_attributes: Optional[int] = None,
        protocols: ProtocolSpec = None,
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
        store: Optional[CheckpointStore] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self._constructor_args = (schema, epsilon, sampled_attributes, protocols)
        self._template = LDPServer(schema, epsilon, sampled_attributes, protocols)
        self.max_frame_bytes = int(max_frame_bytes)
        self.store = store
        self._edges: Dict[bytes, EdgeRecord] = {}
        self._active_edges: Set[bytes] = set()
        self._connections: Set[asyncio.Task] = set()
        self._writers: Set[asyncio.StreamWriter] = set()
        self._tcp: Optional[asyncio.AbstractServer] = None
        self._progress: Optional[asyncio.Event] = None
        self._stopping = False
        self._fold_error: Optional[Exception] = None
        # Counters: a push is "accepted" once validated, folded into the
        # edge table and (with a store) persisted durably.
        self.pushes_accepted = 0
        self.pushes_deduped = 0
        self.deltas_applied = 0
        self.pushes_rejected = 0
        self.handshakes_rejected = 0
        self.bytes_received = 0
        self.checkpoints_written = 0
        self.telemetry = metrics if metrics is not None else MetricsRegistry()
        self._clock = self.telemetry.clock
        self._log = event_logger("root")
        registry = self.telemetry
        self._m_pushes_accepted = registry.counter(
            "root_pushes_accepted_total",
            "Edge state pushes validated, folded and acknowledged",
        )
        self._m_pushes_deduped = registry.counter(
            "root_pushes_deduped_total",
            "Replayed epochs acknowledged without folding (edge retries)",
        )
        self._m_deltas_applied = registry.counter(
            "root_deltas_applied_total",
            "Accepted pushes that arrived as deltas over a stored base",
        )
        self._m_pushes_rejected = registry.counter(
            "root_pushes_rejected_total",
            "Edge state pushes refused after the handshake, by reason",
            labels=("reason",),
        )
        self._m_handshakes_rejected = registry.counter(
            "root_handshakes_rejected_total",
            "Connections refused during the handshake, by reason",
            labels=("reason",),
        )
        self._m_bytes_received = registry.counter(
            "root_push_bytes_received_total",
            "Payload bytes of accepted state pushes",
        )
        self._m_fold_seconds = registry.histogram(
            "root_fold_seconds",
            "Decode + validate + fold (+ durable checkpoint) per push",
        )
        self._m_checkpoints = registry.counter(
            "root_checkpoints_written_total",
            "Federation checkpoints persisted (one per folded push)",
        )
        self._m_checkpoint_bytes = registry.counter(
            "root_checkpoint_bytes_total",
            "Encoded bytes of persisted federation checkpoints",
        )
        self._m_edge_epoch = registry.gauge(
            "root_edge_epoch",
            "Newest epoch folded per edge",
            labels=("edge",),
        )
        self._m_edge_users = registry.gauge(
            "root_edge_users",
            "Users covered by the newest folded snapshot, per edge",
            labels=("edge",),
        )
        self._m_stats_requests = registry.counter(
            "root_stats_requests_total",
            "STATS control requests served",
        )
        if store is not None and getattr(store, "telemetry", None) is None:
            store.attach_telemetry(registry)

    # ------------------------------------------------------------ lifecycle

    @property
    def contract(self) -> CollectionContract:
        """The collection contract every edge push must match."""
        return self._template.contract

    async def start(
        self, host: str = "127.0.0.1", port: int = 0, ssl=None
    ) -> "RootAggregator":
        """Bind the listening socket (recovering the edge table first).

        With a checkpoint store configured, the newest intact federation
        checkpoint is recovered before the socket opens: the edge table
        (epochs and snapshots) resumes, every reconnecting edge hears
        its true watermark, and the round continues as if the root had
        never died. ``ssl`` is an optional server-side
        :class:`ssl.SSLContext` — with it the root only speaks TLS.
        """
        if self._tcp is not None:
            raise TransportError("root aggregator is already serving")
        if self.store is not None:
            document = self.store.recover()
            if document is not None:
                self._edges = parse_federation_checkpoint(
                    document, self.contract
                )
                for edge_id, (epoch, state, _) in self._edges.items():
                    self._observe_edge(edge_id, epoch, state)
                emit(
                    self._log,
                    "recovery_replayed",
                    edges=len(self._edges),
                    users=self.users,
                )
        self._stopping = False
        self._progress = asyncio.Event()
        self._tcp = await asyncio.start_server(
            self._handle, host, port, ssl=ssl
        )
        return self

    @property
    def port(self) -> int:
        """The bound TCP port (useful after binding port 0)."""
        if self._tcp is None or not self._tcp.sockets:
            raise TransportError("root aggregator is not serving")
        ports = {sock.getsockname()[1] for sock in self._tcp.sockets}
        if len(ports) > 1:
            raise TransportError(
                "root aggregator is bound to multiple ports %s: bind one "
                "explicit address instead of a multi-address hostname"
                % sorted(ports)
            )
        return ports.pop()

    async def stop(self, grace: Optional[float] = None) -> None:
        """Stop accepting and settle the open push connections.

        Folded pushes are already durable (when a store is configured)
        and already in the edge table, so there is nothing to drain —
        settling just lets an in-flight push finish its ack. ``grace``
        bounds the wait; after it (or immediately when ``None`` and a
        peer is idle-but-connected, pass ``grace=0``) remaining
        connections are closed. Mirrors the gateway's py3.12+ ordering:
        connections are settled *before* ``wait_closed()``.
        """
        self._stopping = True
        tcp, self._tcp = self._tcp, None
        if tcp is not None:
            tcp.close()
        pending = list(self._connections)
        if pending:
            if grace is None:
                for writer in list(self._writers):
                    writer.close()
                await asyncio.gather(*pending, return_exceptions=True)
            else:
                _, overdue = await asyncio.wait(pending, timeout=grace)
                if overdue:
                    for writer in list(self._writers):
                        writer.close()
                    await asyncio.gather(*overdue, return_exceptions=True)
        if tcp is not None:
            await tcp.wait_closed()

    async def __aenter__(self) -> "RootAggregator":
        return self

    async def __aexit__(self, *exc_info: object) -> None:
        await self.stop()

    # --------------------------------------------------------------- waiting

    @property
    def users(self) -> int:
        """Users covered by the newest folded snapshot of every edge.

        Each user reports through exactly one edge and edge snapshots
        are cumulative, so the sum across edges counts every user once.
        """
        total = 0
        for _, state, _ in self._edges.values():
            users = state.get("users")
            if isinstance(users, int) and not isinstance(users, bool):
                total += users
        return total

    @property
    def edges(self) -> int:
        """Edges that have pushed (or been recovered) so far."""
        return len(self._edges)

    async def wait_for_users(self, count: int) -> None:
        """Block until folded snapshots cover at least ``count`` users.

        Raises :class:`TransportError` if the root is poisoned (a
        checkpoint save failed mid-round) while waiting — a poisoned
        root refuses every further push, so the count can never be
        reached.
        """
        if self._progress is None:
            raise TransportError("root aggregator is not serving")
        while self.users < int(count):
            self._check_folds()
            self._progress.clear()
            if self.users >= int(count):
                break
            await self._progress.wait()

    def _check_folds(self) -> None:
        if self._fold_error is not None:
            raise TransportError(
                "the root failed to persist a folded push; the round "
                "cannot finish: %s" % self._fold_error
            ) from self._fold_error

    def _poison(self, exc: Exception) -> None:
        if self._fold_error is None:
            self._fold_error = exc
        if self._progress is not None:
            self._progress.set()

    # -------------------------------------------------------------- results

    def merged(self) -> LDPServer:
        """Merge every edge's newest snapshot into one fresh server."""
        self._check_folds()
        target = LDPServer(*self._constructor_args)
        for edge_id in sorted(self._edges):
            _, state, _ = self._edges[edge_id]
            target.merge_state_dict(state)
        return target

    def estimate(
        self, postprocess: Optional[Postprocessor] = None
    ) -> SessionEstimate:
        """Federated estimates over every edge's newest snapshot.

        Deterministic merge order (edge ids sorted) — not that it could
        matter: aggregation is exactly additive, so any order yields the
        same bits.
        """
        return self.merged().estimate(postprocess=postprocess)

    # ------------------------------------------------------------- telemetry

    def stats_snapshot(self) -> Dict[str, Any]:
        """Root counters, per-edge records and the aggregated edge view.

        ``counters`` are the root's own integers; ``edges`` maps edge id
        (hex) to its newest epoch, covered users and self-reported
        gateway counters; ``edge_totals`` sums those reported counters
        across edges — one snapshot describes the whole topology.
        """
        edge_totals: Dict[str, int] = {}
        edges: Dict[str, Any] = {}
        for edge_id, (epoch, state, counters) in sorted(self._edges.items()):
            users = state.get("users")
            edges[edge_id.hex()] = {
                "epoch": epoch,
                "users": users if isinstance(users, int) else 0,
                "counters": dict(counters),
            }
            for name, value in counters.items():
                if isinstance(value, int) and not isinstance(value, bool):
                    edge_totals[name] = edge_totals.get(name, 0) + value
        counters = {
            "pushes_accepted": self.pushes_accepted,
            "pushes_deduped": self.pushes_deduped,
            "deltas_applied": self.deltas_applied,
            "pushes_rejected": self.pushes_rejected,
            "handshakes_rejected": self.handshakes_rejected,
            "rejections_total": self.pushes_rejected + self.handshakes_rejected,
            "bytes_received": self.bytes_received,
            "checkpoints_written": self.checkpoints_written,
            "edges": len(self._edges),
            "users": self.users,
        }
        return {
            "counters": counters,
            "edges": edges,
            "edge_totals": edge_totals,
            "metrics": self.telemetry.snapshot(),
        }

    def _observe_edge(
        self, edge_id: bytes, epoch: int, state: Dict[str, Any]
    ) -> None:
        label = edge_id.hex()[:8]
        self._m_edge_epoch.labels(edge=label).set(epoch)
        users = state.get("users")
        if isinstance(users, int) and not isinstance(users, bool):
            self._m_edge_users.labels(edge=label).set(users)

    # ----------------------------------------------------------- connections

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        if self._stopping:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass
            return
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
        self._writers.add(writer)
        edge_id: Optional[bytes] = None
        try:
            edge_id = await self._handshake(reader, writer)
            if edge_id is not None:
                await self._pump(reader, writer, edge_id)
        except (ConnectionError, TransportError):
            pass  # peer vanished: folded pushes stay folded
        finally:
            if edge_id is not None:
                self._active_edges.discard(edge_id)
            self._writers.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass
            if task is not None:
                self._connections.discard(task)

    async def _reply(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        message: str = "",
        hello: bool = False,
        resume: int = 0,
    ) -> None:
        if hello:
            writer.write(
                HELLO_REPLY.pack(
                    TRANSPORT_MAGIC,
                    TRANSPORT_VERSION,
                    self.contract.digest,
                    resume,
                )
            )
        writer.write(pack_status(status, message))
        await writer.drain()

    async def _handshake(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> Optional[bytes]:
        try:
            magic, version, digest, edge_id = HELLO.unpack(
                await reader.readexactly(HELLO.size)
            )
        except asyncio.IncompleteReadError:
            return None  # probe/scan connection: nothing to answer
        if magic == STATS_MAGIC:
            payload = json.dumps(self.stats_snapshot(), sort_keys=True)
            self._m_stats_requests.inc()
            emit(self._log, "stats_served", bytes=len(payload))
            await self._reply(writer, STATUS_OK, payload, hello=True)
            return None
        if magic != STATE_MAGIC:
            self._reject_handshake("bad_magic")
            await self._reply(
                writer,
                STATUS_TRANSPORT_ERROR,
                "not a federation state-push hello: bad magic %r (a root "
                "aggregator accepts STATE pushes from edges, not report "
                "frames — expected %r)" % (magic, STATE_MAGIC),
                hello=True,
            )
            return None
        if version != TRANSPORT_VERSION:
            self._reject_handshake("version")
            await self._reply(
                writer,
                STATUS_TRANSPORT_ERROR,
                "unsupported transport version %d (this root speaks %d)"
                % (version, TRANSPORT_VERSION),
                hello=True,
            )
            return None
        if digest != self.contract.digest:
            self._reject_handshake("contract_mismatch")
            await self._reply(
                writer,
                STATUS_CONTRACT_MISMATCH,
                "edge operates under contract %s but this root aggregates "
                "under %s (schema, budget, and per-attribute protocols "
                "must agree)" % (bytes(digest).hex(), self.contract.fingerprint),
                hello=True,
            )
            return None
        if edge_id in self._active_edges:
            self._reject_handshake("duplicate_edge")
            await self._reply(
                writer,
                STATUS_TRANSPORT_ERROR,
                "edge id %s is already connected: an edge id names one "
                "resumable push stream, so concurrent connections under "
                "it would corrupt its epoch watermark" % edge_id.hex(),
                hello=True,
            )
            return None
        self._active_edges.add(edge_id)
        resume = self._edges[edge_id][0] if edge_id in self._edges else 0
        emit(
            self._log,
            "edge_connected",
            edge_id=edge_id.hex(),
            resume_epoch=resume,
        )
        await self._reply(writer, STATUS_OK, hello=True, resume=resume)
        return edge_id

    def _reject_handshake(self, reason: str) -> None:
        self.handshakes_rejected += 1
        self._m_handshakes_rejected.labels(reason=reason).inc()
        emit(
            self._log,
            "handshake_rejected",
            level=logging.WARNING,
            reason=reason,
        )

    async def _pump(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        edge_id: bytes,
    ) -> None:
        """Fold epoch-numbered pushes until EOF or the first bad one.

        Epochs at or below the edge's watermark are acknowledged without
        folding (the edge retried past our ack); newer snapshot epochs
        replace the edge's record, and delta epochs — accepted only when
        their ``base_epoch`` names exactly the record the root holds —
        are added to it through the exact merge, so the installed state
        equals the snapshot the edge would have shipped, bit for bit.
        Unlike report streams, epochs may skip ahead — the installed
        state is always cumulative, so epoch ``n`` covers everything any
        skipped epoch would have.
        """
        while True:
            try:
                framed = await read_frame(reader, self.max_frame_bytes)
            except WireFormatError as exc:
                self._reject_push("wire", edge_id, exc)
                await self._reply(writer, STATUS_WIRE_ERROR, str(exc))
                return
            if framed is None:
                return  # clean end of stream
            epoch, payload = framed
            if self._fold_error is not None:
                self._reject_push("poisoned", edge_id, self._fold_error)
                await self._reply(
                    writer,
                    STATUS_TRANSPORT_ERROR,
                    "root aggregation failed: %s" % self._fold_error,
                )
                return
            watermark = self._edges[edge_id][0] if edge_id in self._edges else 0
            if epoch <= watermark:
                self.pushes_deduped += 1
                self._m_pushes_deduped.inc()
                emit(
                    self._log,
                    "push_deduped",
                    level=logging.DEBUG,
                    edge_id=edge_id.hex(),
                    epoch=epoch,
                )
                await self._reply(writer, STATUS_OK)
                continue
            started = self._clock()
            try:
                push = decode_state_push(payload, self.contract)
                counters = push.counters
                if push.kind == PUSH_KIND_DELTA:
                    record = self._edges.get(edge_id)
                    if record is None:
                        raise WireFormatError(
                            "delta push over base epoch %d from edge %s, "
                            "but this root holds no state for it — a "
                            "delta needs the snapshot it builds on"
                            % (push.base_epoch, edge_id.hex())
                        )
                    if push.base_epoch != record[0]:
                        raise WireFormatError(
                            "delta push builds on epoch %d but this root "
                            "holds epoch %d for edge %s — the edge must "
                            "re-ship a full snapshot"
                            % (push.base_epoch, record[0], edge_id.hex())
                        )
                    # Exact merge onto the stored base: the installed
                    # state equals the full snapshot the edge holds, bit
                    # for bit (stored + (current − stored) == current).
                    folded = LDPServer(*self._constructor_args)
                    folded.load_state_dict(record[1])
                    folded.merge_state_dict(push.state)
                    state = folded.state_dict()
                else:
                    state = push.state
                    # Validate the snapshot restores cleanly BEFORE
                    # installing it — a malformed state must not replace
                    # a good one (merged() would fail long after the ack).
                    LDPServer(*self._constructor_args).load_state_dict(state)
            except ContractMismatchError as exc:
                self._reject_push("contract_mismatch", edge_id, exc)
                await self._reply(writer, STATUS_CONTRACT_MISMATCH, str(exc))
                return
            except WireFormatError as exc:
                self._reject_push("invalid", edge_id, exc)
                await self._reply(writer, STATUS_WIRE_ERROR, str(exc))
                return
            previous = self._edges.get(edge_id)
            self._edges[edge_id] = (epoch, state, counters)
            if self.store is not None:
                # Durable BEFORE the ack: once the edge hears OK, its
                # snapshot survives a root SIGKILL.
                try:
                    document = federation_checkpoint_document(
                        self.contract, self._edges
                    )
                    self.store.save(document)
                    self.checkpoints_written += 1
                    self._m_checkpoints.inc()
                    self._m_checkpoint_bytes.inc(
                        len(encode_document(document))
                    )
                # repro: allow[broad-except] -- poison rationale: any
                # checkpoint failure (typed or not) must roll the fold
                # back and poison the round before the ack, or un-durable
                # state would satisfy wait_for_users and leak into
                # merged() despite having no checkpoint behind it.
                except Exception as exc:
                    if previous is None:
                        del self._edges[edge_id]
                    else:
                        self._edges[edge_id] = previous
                    emit(
                        self._log,
                        "checkpoint_failed",
                        level=logging.ERROR,
                        edge_id=edge_id.hex(),
                        error=str(exc),
                    )
                    self._poison(exc)
                    self._reject_push("checkpoint_failed", edge_id, exc)
                    await self._reply(
                        writer,
                        STATUS_TRANSPORT_ERROR,
                        "root checkpoint failed: %s" % exc,
                    )
                    return
            self.pushes_accepted += 1
            self.bytes_received += len(payload)
            self._m_pushes_accepted.inc()
            self._m_bytes_received.inc(len(payload))
            if push.kind == PUSH_KIND_DELTA:
                self.deltas_applied += 1
                self._m_deltas_applied.inc()
            self._m_fold_seconds.observe(self._clock() - started)
            self._observe_edge(edge_id, epoch, state)
            emit(
                self._log,
                "push_folded",
                level=logging.DEBUG,
                edge_id=edge_id.hex(),
                epoch=epoch,
                kind=push.kind,
                users=state.get("users"),
                bytes=len(payload),
            )
            if self._progress is not None:
                self._progress.set()
            await self._reply(writer, STATUS_OK)

    def _reject_push(
        self, reason: str, edge_id: bytes, error: Exception
    ) -> None:
        self.pushes_rejected += 1
        self._m_pushes_rejected.labels(reason=reason).inc()
        emit(
            self._log,
            "push_rejected",
            level=logging.WARNING,
            reason=reason,
            edge_id=edge_id.hex(),
            detail=str(error),
        )


async def serve_root(
    schema: Schema,
    epsilon: float,
    sampled_attributes: Optional[int] = None,
    protocols: ProtocolSpec = None,
    host: str = "127.0.0.1",
    port: int = 0,
    max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
    store: Optional[CheckpointStore] = None,
    metrics: Optional[MetricsRegistry] = None,
    ssl=None,
) -> RootAggregator:
    """Start a :class:`RootAggregator` on ``host:port`` and return it.

    ``port=0`` binds an ephemeral port (read it back from
    :attr:`RootAggregator.port`). The caller owns the round's lifecycle:
    typically ``await root.wait_for_users(n)``, then ``await
    root.stop()`` and read :meth:`~RootAggregator.estimate`.
    """
    root = RootAggregator(
        schema,
        epsilon,
        sampled_attributes,
        protocols,
        max_frame_bytes=max_frame_bytes,
        store=store,
        metrics=metrics,
    )
    return await root.start(host, port, ssl=ssl)
