"""Edge aggregators: a local collection tier that ships state upstream.

:class:`EdgeAggregator` is the middle of the federation hierarchy. It
runs a full :class:`~repro.transport.CollectionGateway` locally —
clients connect to it exactly as they would to a standalone gateway,
same handshake, same resume semantics, same optional checkpoint store —
and folds accepted frames into its own
:class:`~repro.session.ShardedServer`. Periodically (every ``N``
accepted frames, every ``T`` seconds, or both) it cuts a cumulative
:meth:`~repro.session.LDPServer.state_dict` snapshot and pushes it
upstream to a :class:`~repro.federation.RootAggregator` through a
:class:`~repro.federation.StatePusher` — as the accumulator *delta*
since the last acknowledged push whenever the root provably holds that
base (same connection, matching watermark), and as the full snapshot
otherwise (first push, reconnects, restarts, refused deltas).

Nothing is ever lost between the tiers. Locally the gateway's own
durable checkpoints cover acknowledged frames; upstream every push —
snapshot or delta applied to the root's stored state — leaves the root
holding the edge's full cumulative state, so a push that never arrived
is subsumed by the next one, and an edge that crashed resumes from its
checkpoint and re-ships everything it durably held under the same edge
id. The root's epoch watermark dedups whatever overlaps. The federated
estimate therefore stays bit-identical to one-shot ingestion of every
client's reports — the property the whole tier is built around.
"""

from __future__ import annotations

import asyncio
import logging
from typing import Any, Dict, List, Optional, Tuple

from ..exceptions import StateDeltaError, TransportError, WireFormatError
from ..session.client import ProtocolSpec
from ..session.schema import Schema
from ..session.server import Postprocessor, SessionEstimate
from ..session.sharded import ShardedServer
from ..storage import CheckpointStore
from ..telemetry import MetricsRegistry, emit, event_logger
from ..transport.framing import DEFAULT_MAX_FRAME_BYTES
from ..transport.gateway import CollectionGateway
from ..transport.sender import _as_sender_id
from ..wire.contract import CollectionContract
from .pusher import StatePusher
from .state_push import state_dict_delta


class EdgeAggregator:
    """One edge of a federated round: local gateway, upstream pusher.

    Parameters
    ----------
    schema, epsilon, sampled_attributes, protocols:
        The collection contract — necessarily the same one the root and
        every client operate under.
    shards, queue_depth, max_frame_bytes:
        Local ingestion shape, as for
        :class:`~repro.transport.CollectionGateway`.
    store, checkpoint_every_frames, checkpoint_every_seconds:
        Optional local durability, passed to the gateway verbatim. With
        a store the edge survives SIGKILL: it recovers its aggregation
        state on :meth:`start` and its next push re-ships everything it
        durably held.
    edge_id:
        16 raw bytes naming this edge's push stream at the root (random
        unless given). Pass a stable id so restarts resume the same
        stream instead of registering a ghost edge.
    push_every_frames, push_every_seconds:
        Upstream push triggers; either, both, or neither (``None`` means
        pushes happen only at :meth:`stop`, which always pushes).
    push_attempts, push_retry_delay:
        Transport-failure retry policy per push; each reconnect
        re-learns the root's epoch watermark, so retries are always
        safe.
    metrics:
        Optional shared :class:`~repro.telemetry.MetricsRegistry`; one
        is created when omitted. The gateway, the local shards, the
        store and the pusher all instrument against it.
    """

    def __init__(
        self,
        schema: Schema,
        epsilon: float,
        sampled_attributes: Optional[int] = None,
        protocols: ProtocolSpec = None,
        shards: int = 2,
        queue_depth: int = 8,
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
        store: Optional[CheckpointStore] = None,
        checkpoint_every_frames: Optional[int] = None,
        checkpoint_every_seconds: Optional[float] = None,
        edge_id: Optional[bytes] = None,
        push_every_frames: Optional[int] = None,
        push_every_seconds: Optional[float] = None,
        push_attempts: int = 5,
        push_retry_delay: float = 0.5,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        if push_every_frames is not None and int(push_every_frames) < 1:
            raise TransportError(
                "push_every_frames must be >= 1, got %r"
                % (push_every_frames,)
            )
        if push_every_seconds is not None and float(push_every_seconds) <= 0:
            raise TransportError(
                "push_every_seconds must be > 0, got %r"
                % (push_every_seconds,)
            )
        if int(push_attempts) < 1:
            raise TransportError(
                "push_attempts must be >= 1, got %r" % (push_attempts,)
            )
        self.telemetry = metrics if metrics is not None else MetricsRegistry()
        self.server = ShardedServer(
            schema, epsilon, sampled_attributes, protocols, shards=shards
        ).attach_telemetry(self.telemetry)
        self.gateway = CollectionGateway(
            self.server,
            queue_depth=queue_depth,
            max_frame_bytes=max_frame_bytes,
            store=store,
            checkpoint_every_frames=checkpoint_every_frames,
            checkpoint_every_seconds=checkpoint_every_seconds,
            metrics=self.telemetry,
        )
        self.edge_id = _as_sender_id(edge_id)
        self.push_every_frames = (
            None if push_every_frames is None else int(push_every_frames)
        )
        self.push_every_seconds = (
            None if push_every_seconds is None else float(push_every_seconds)
        )
        self.push_attempts = int(push_attempts)
        self.push_retry_delay = float(push_retry_delay)
        self._upstream: Optional[Tuple[str, int]] = None
        self._upstream_ssl = None
        self._pusher: Optional[StatePusher] = None
        self._push_lock = asyncio.Lock()
        self._wake: Optional[asyncio.Event] = None
        self._loop_task: Optional[asyncio.Task] = None
        self._stopping = False
        self._frames_at_push = 0
        self._frames_since_push = 0
        #: Snapshot and epoch of the last push the root acknowledged —
        #: the base the next delta push builds on. ``None`` forces a
        #: full snapshot (first push, failed delta, edge restart).
        self._base_state: Optional[Dict[str, Any]] = None
        self._base_epoch = 0
        self.pushes_completed = 0
        self.delta_pushes = 0
        self.push_retries = 0
        self.last_epoch = 0
        self.last_push_error: Optional[Exception] = None
        self._log = event_logger("edge")
        registry = self.telemetry
        self._m_pushes = registry.counter(
            "edge_pushes_completed_total",
            "Upstream state pushes acknowledged by the root",
        )
        self._m_push_retries = registry.counter(
            "edge_push_retries_total",
            "Push attempts that failed with a transport error",
        )
        self._m_delta_pushes = registry.counter(
            "edge_delta_pushes_total",
            "Acknowledged pushes shipped as deltas instead of snapshots",
        )
        self._m_last_epoch = registry.gauge(
            "edge_last_epoch",
            "Epoch of the newest acknowledged upstream push",
        )
        self._m_unpushed = registry.gauge(
            "edge_unpushed_frames",
            "Accepted frames not yet covered by an acknowledged push",
        )
        self.gateway.add_frame_listener(self._on_frame)

    # ------------------------------------------------------------ lifecycle

    @property
    def contract(self) -> CollectionContract:
        """The collection contract clients and the root must match."""
        return self.server.contract

    @property
    def port(self) -> int:
        """The local gateway's bound TCP port."""
        return self.gateway.port

    @property
    def users(self) -> int:
        """Users folded into the local shards so far."""
        return self.server.users

    async def start(
        self,
        upstream_host: str,
        upstream_port: int,
        host: str = "127.0.0.1",
        port: int = 0,
        ssl=None,
        upstream_ssl=None,
    ) -> "EdgeAggregator":
        """Start the local gateway and the upstream push loop.

        ``ssl`` (server-side context) makes the *local* client hop TLS;
        ``upstream_ssl`` (client-side context) makes the push hop TLS —
        the two hops are independent, so a deployment can encrypt either,
        both, or neither. The upstream connection itself is opened
        lazily at the first push, so the edge comes up even while the
        root is still starting.
        """
        if self._loop_task is not None:
            raise TransportError("edge aggregator is already serving")
        self._upstream = (upstream_host, int(upstream_port))
        self._upstream_ssl = upstream_ssl
        self._stopping = False
        self.last_push_error = None
        await self.gateway.start(host, port, ssl=ssl)
        self._wake = asyncio.Event()
        self._loop_task = asyncio.ensure_future(self._push_loop())
        emit(
            self._log,
            "edge_started",
            edge_id=self.edge_id.hex(),
            port=self.port,
            upstream="%s:%d" % self._upstream,
        )
        return self

    async def stop(
        self, abort_connections: bool = False, grace: Optional[float] = None
    ) -> None:
        """Drain the local round, push the final state, close upstream.

        The gateway stops first (drain-and-merge, final local checkpoint
        when a store is configured), so the closing push covers *every*
        acknowledged frame. The final push always happens — even when no
        frame arrived since the last one — so the root provably holds
        this edge's complete round; a push failure here propagates after
        cleanup, because an edge that could not deliver its final state
        has not finished the round.
        """
        self._stopping = True
        if self._wake is not None:
            self._wake.set()
        task, self._loop_task = self._loop_task, None
        if task is not None:
            await task
        await self.gateway.stop(
            abort_connections=abort_connections, grace=grace
        )
        push_error: Optional[Exception] = None
        try:
            await self.push_now()
        # repro: allow[broad-except] -- capture-and-reraise: the final push
        # failure (whatever its type) must wait for pusher cleanup and the
        # stop event, then propagate below; nothing is swallowed.
        except Exception as exc:
            push_error = exc
        await self._close_pusher()
        emit(
            self._log,
            "edge_stopped",
            edge_id=self.edge_id.hex(),
            pushes=self.pushes_completed,
            last_epoch=self.last_epoch,
            users=self.users,
        )
        if push_error is not None:
            raise push_error

    async def __aenter__(self) -> "EdgeAggregator":
        return self

    async def __aexit__(self, *exc_info: object) -> None:
        await self.stop()

    # -------------------------------------------------------------- pushing

    def _on_frame(self) -> None:
        # Runs synchronously under the gateway's intake barrier: cheap
        # bookkeeping only.
        self._frames_since_push += 1
        self._m_unpushed.set(self._frames_since_push)
        if (
            self.push_every_frames is not None
            and self._frames_since_push >= self.push_every_frames
            and self._wake is not None
        ):
            self._wake.set()

    async def _push_loop(self) -> None:
        while not self._stopping:
            if self._wake is None:
                raise TransportError(
                    "push loop is running without its wake event; "
                    "start() was never awaited"
                )
            if self.push_every_seconds is not None:
                try:
                    await asyncio.wait_for(
                        self._wake.wait(), self.push_every_seconds
                    )
                except asyncio.TimeoutError:
                    pass  # timer push
            else:
                await self._wake.wait()
            if self._stopping:
                return
            self._wake.clear()
            if self._frames_since_push == 0:
                continue  # idle timer tick: nothing new to ship
            try:
                await self.push_now()
            # repro: allow[broad-except] -- retry rationale: the push loop
            # must survive any upstream failure; the error is recorded and
            # the next trigger (and the final push at stop) retries with
            # the full cumulative state, so a flapping root costs latency,
            # never data.
            except Exception as exc:
                self.last_push_error = exc
                emit(
                    self._log,
                    "push_failed",
                    level=logging.ERROR,
                    edge_id=self.edge_id.hex(),
                    error=str(exc),
                )

    async def push_now(self) -> int:
        """Cut a cumulative snapshot and deliver it upstream; its epoch.

        Serialised: concurrent callers queue on a lock, so snapshots go
        out in epoch order. The gateway's shard queues are drained first
        so the snapshot covers every frame acknowledged before the call.

        Whenever the connection's acknowledged epoch matches this edge's
        recorded base — i.e. the root provably holds the exact state the
        last ack covered — only the accumulator *delta* since that base
        goes on the wire; otherwise (first push, reconnect onto a
        different watermark, restart) the full snapshot ships. Either
        way the root ends up holding the same cumulative state, so the
        choice is invisible to correctness.

        Transport failures are retried up to ``push_attempts`` times
        with a fresh connection (and a re-learned epoch watermark) each
        time; a refused *delta* costs one retry and falls back to a full
        snapshot; other typed rejections — contract mismatch, malformed
        push — propagate immediately, because the root will refuse them
        again.
        """
        async with self._push_lock:
            await self.gateway.drain()
            frames = self.gateway.frames_accepted
            state = self.server.state_dict()
            counters = {
                "frames_accepted": self.gateway.frames_accepted,
                "frames_rejected": self.gateway.frames_rejected,
                "frames_deduped": self.gateway.frames_deduped,
                "handshakes_rejected": self.gateway.handshakes_rejected,
                "bytes_received": self.gateway.bytes_received,
                "users_accepted": self.gateway.users_accepted,
            }
            failures: List[Tuple[int, BaseException]] = []
            for attempt in range(1, self.push_attempts + 1):
                if attempt > 1:
                    await asyncio.sleep(self.push_retry_delay)
                as_delta = False
                try:
                    pusher = await self._ensure_pusher()
                    delta: Optional[Dict[str, Any]] = None
                    if (
                        self._base_state is not None
                        and pusher.acked_epoch == self._base_epoch
                    ):
                        try:
                            delta = state_dict_delta(state, self._base_state)
                        except StateDeltaError:
                            # Not a prefix pair (e.g. the local server
                            # was reset mid-round): ship it all.
                            self._base_state = None
                    if delta is not None:
                        as_delta = True
                        epoch = await pusher.push(
                            delta,
                            counters,
                            kind="delta",
                            base_epoch=self._base_epoch,
                        )
                    else:
                        epoch = await pusher.push(state, counters)
                except (TransportError, ConnectionError, OSError) as exc:
                    failures.append((attempt, exc))
                    self.push_retries += 1
                    self._m_push_retries.inc()
                    emit(
                        self._log,
                        "push_retry",
                        level=logging.WARNING,
                        edge_id=self.edge_id.hex(),
                        attempt=attempt,
                        attempts=self.push_attempts,
                        error=str(exc),
                    )
                    await self._close_pusher()
                    continue
                except WireFormatError as exc:
                    if not as_delta:
                        raise
                    # The root refused the delta (base mismatch after an
                    # ack raced a crash, say). Forget the base so the
                    # next attempt ships the authoritative full snapshot.
                    self._base_state = None
                    self._base_epoch = 0
                    failures.append((attempt, exc))
                    self.push_retries += 1
                    self._m_push_retries.inc()
                    emit(
                        self._log,
                        "delta_refused",
                        level=logging.WARNING,
                        edge_id=self.edge_id.hex(),
                        attempt=attempt,
                        error=str(exc),
                    )
                    await self._close_pusher()
                    continue
                self.pushes_completed += 1
                if as_delta:
                    self.delta_pushes += 1
                    self._m_delta_pushes.inc()
                self._base_state = state
                self._base_epoch = epoch
                self.last_epoch = epoch
                self.last_push_error = None
                self._frames_at_push = frames
                self._frames_since_push = max(
                    0, self.gateway.frames_accepted - frames
                )
                self._m_pushes.inc()
                self._m_last_epoch.set(epoch)
                self._m_unpushed.set(self._frames_since_push)
                return epoch
            detail = "; ".join(
                "attempt %d: %s" % (attempt, exc)
                for attempt, exc in failures
            )
            raise TransportError(
                "state not pushed after %d attempt(s): %s"
                % (self.push_attempts, detail)
            ) from failures[-1][1]

    async def _ensure_pusher(self) -> StatePusher:
        if self._upstream is None:
            raise TransportError("edge aggregator is not serving")
        if self._pusher is None:
            host, port = self._upstream
            self._pusher = await StatePusher.connect(
                host,
                port,
                self.contract,
                edge_id=self.edge_id,
                metrics=self.telemetry,
                ssl=self._upstream_ssl,
            )
        return self._pusher

    async def _close_pusher(self) -> None:
        pusher, self._pusher = self._pusher, None
        if pusher is not None:
            await pusher.close()

    # ------------------------------------------------------------- estimate

    def estimate(
        self, postprocess: Optional[Postprocessor] = None
    ) -> SessionEstimate:
        """This edge's *local* estimates (the root holds the global view)."""
        return self.server.estimate(postprocess=postprocess)

    def stats_snapshot(self) -> Dict[str, Any]:
        """The gateway snapshot extended with this edge's push counters."""
        snapshot = self.gateway.stats_snapshot()
        snapshot["federation"] = {
            "edge_id": self.edge_id.hex(),
            "pushes_completed": self.pushes_completed,
            "delta_pushes": self.delta_pushes,
            "push_retries": self.push_retries,
            "last_epoch": self.last_epoch,
            "unpushed_frames": self._frames_since_push,
        }
        return snapshot
