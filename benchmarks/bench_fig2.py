"""Fig. 2 (a–c) — CLT prediction vs experimental pdf on the Uniform dataset.

Paper setting: n = 200,000 users, d = 5,000 dimensions, m = 50, ε = 1,
1,000 repetitions; the framework's Gaussian tracks the empirical pdf of
the first dimension's deviation for Laplace, Piecewise and Square wave.

Scaled-down here to n = 50,000 and 400 repetitions — the deviation model
depends on n only through r = n·m/d, so the overlay shape is preserved.
Shape asserted: empirical mean/std match the Lemma 2/3 Gaussian and the
Kolmogorov–Smirnov distance is small for all three mechanisms.
"""

from __future__ import annotations

import pytest

from repro.experiments import run_fig2
from bench_config import BENCH_SEED

USERS = 50_000
REPEATS = 400


@pytest.mark.parametrize("mechanism", ["laplace", "piecewise", "square_wave"])
def test_fig2(benchmark, record_artefact, mechanism):
    (result,) = benchmark.pedantic(
        run_fig2,
        kwargs=dict(
            users=USERS,
            repeats=REPEATS,
            mechanisms=(mechanism,),
            rng=BENCH_SEED,
        ),
        rounds=1,
        iterations=1,
    )
    record_artefact("fig2_%s" % mechanism, result.format())

    fit = result.fit
    # The CLT Gaussian tracks the empirical deviations.
    assert fit.mean_error < 0.35 * result.model.sigma
    assert 0.85 < fit.std_ratio < 1.15
    assert fit.ks_statistic < 0.1
