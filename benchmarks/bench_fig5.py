"""Fig. 5 (a–b) — MSE vs dimensionality on the COV-19(-like) dataset.

Paper setting: ε = 0.8, d ∈ {50, 100, 200, 400, 800, 1600} (columns
resampled from the 750-dimension base), Laplace and Piecewise, with the
baseline aggregation vs HDR4ME-L1 vs HDR4ME-L2.

Scaled-down to n = 10,000 users, 2 repetitions, d up to 1600. Shapes
asserted: both regularizations beat the baseline at every dimensionality;
the baseline deteriorates as d grows; L2 at very high d flattens (the
enhanced mean saturates near zero, so its MSE approaches the mean-square
of the true means and stops moving).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments import run_dimensionality_sweep
from bench_config import BENCH_SEED

USERS = 10_000
REPEATS = 2
DIMENSIONS = (50, 100, 200, 400, 800, 1600)


@pytest.mark.parametrize("mechanism", ["laplace", "piecewise"])
def test_fig5(benchmark, record_artefact, mechanism):
    result = benchmark.pedantic(
        run_dimensionality_sweep,
        kwargs=dict(
            mechanism=mechanism,
            dimension_grid=DIMENSIONS,
            users=USERS,
            repeats=REPEATS,
            rng=BENCH_SEED,
        ),
        rounds=1,
        iterations=1,
    )
    record_artefact("fig5_%s" % mechanism, result.format())

    baseline = np.array([row.values["baseline"] for row in result.rows])
    l1 = np.array([row.values["l1"] for row in result.rows])
    l2 = np.array([row.values["l2"] for row in result.rows])

    # The dimensionality curse: baseline MSE grows with d.
    assert baseline[-1] > baseline[0]
    # HDR4ME enhances the aggregation at every dimensionality.
    assert (l1 < baseline).all()
    assert (l2 < baseline).all()
    # L2 flattens at extreme d (enhanced mean saturates near zero).
    assert abs(l2[-1] - l2[-2]) < 0.5 * max(l2[-1], l2[-2])
