"""Table II — analytical supremum-probability benchmark (Section IV-C).

Paper rows (one dimension, ε/m = 0.001, r = 10,000):

    ξ           0.001      0.01     0.05    0.1
    Piecewise   3.46e-5    3.46e-4  0.002   0.004
    Square      2.12e-16   2.62e-11 0.644   1.000

Shape asserted: Piecewise wins at small ξ (unbiasedness), Square wave wins
decisively at large ξ (tiny variance); the Piecewise column reproduces the
paper to three significant figures.
"""

from __future__ import annotations

import numpy as np

from repro.experiments import PAPER_TABLE2, run_case_study
from bench_config import BENCH_SEED


def test_table2(benchmark, record_artefact):
    result = benchmark.pedantic(run_case_study, rounds=1, iterations=1)
    record_artefact("table2", result.format())

    table = result.table
    piecewise = dict(zip(table.rows[0].suprema, table.rows[0].probabilities))
    square = dict(zip(table.rows[1].suprema, table.rows[1].probabilities))

    # Who wins where (the paper's headline observation).
    assert piecewise[0.001] > square[0.001]
    assert piecewise[0.01] > square[0.01]
    assert square[0.05] > piecewise[0.05]
    assert square[0.1] > piecewise[0.1]
    assert square[0.1] > 0.999

    # Piecewise column matches the paper numerically.
    expected = PAPER_TABLE2["piecewise"]
    np.testing.assert_allclose(
        [piecewise[0.001], piecewise[0.01]], expected[:2], rtol=0.01
    )
    # The paper rounds the last two cells to one significant figure.
    assert abs(piecewise[0.05] - expected[2]) < 5e-4
    assert abs(piecewise[0.1] - expected[3]) < 1e-3

    # The framework's model constants (Eq. 15 and Eq. 19).
    assert abs(result.piecewise_model.sigma**2 - 533.210) < 0.5
    assert abs(result.square_model.delta - (-0.049)) < 2e-3
    assert abs(result.square_model.sigma**2 - 3.365e-5) < 5e-7
