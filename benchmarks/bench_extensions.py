"""Extension benchmarks: the paper's future-work directions, measured.

Four studies beyond the paper's evaluation section:

* **Elastic net** — α-sweep between the paper's L1 (α = 1) and L2
  (α = 0) on the Gaussian dataset; the paper's two extremes bracket the
  family.
* **Budget allocation** — uniform (the paper's protocol) vs
  signal-proportional allocation (the related-work stream): weighted
  allocation buys accuracy on prioritized dimensions at the cost of the
  rest.
* **Set-valued data** — padding-and-sampling frequency estimation, the
  paper's named future-work data type.
* **Variance estimation** — two-phase moment collection with HDR4ME on
  both moments, the paper's "other statistics" direction.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import mse, true_mean
from repro.datasets import gaussian_dataset
from repro.experiments import SeriesRow, format_series
from repro.hdr4me import Recalibrator, l1_lambda, recalibrate_elastic_net
from repro.mechanisms import get_mechanism
from repro.protocol import (
    MeanEstimationPipeline,
    PaddingAndSampling,
    SignalProportionalAllocation,
    UniformAllocation,
    VarianceEstimationPipeline,
    allocated_pipeline_run,
    item_frequencies,
    true_variance,
)
from bench_config import BENCH_SEED

USERS = 15_000


def _elastic_sweep(alphas, users, seed):
    rng = np.random.default_rng(seed)
    d, eps = 100, 0.4
    data = gaussian_dataset(users, d, rng=rng)
    truth = true_mean(data)
    pipeline = MeanEstimationPipeline(get_mechanism("laplace"), eps, dimensions=d)
    result = pipeline.run(data, rng)
    model = pipeline.deviation_model(users=users)
    lambdas = l1_lambda(model)
    rows = []
    for alpha in alphas:
        theta = recalibrate_elastic_net(result.theta_hat, lambdas, alpha)
        rows.append(SeriesRow(x=alpha, values={"mse": mse(theta, truth)}))
    baseline = mse(result.theta_hat, truth)
    return baseline, rows


def test_elastic_net_alpha_sweep(benchmark, record_artefact):
    alphas = (0.0, 0.25, 0.5, 0.75, 1.0)
    baseline, rows = benchmark.pedantic(
        _elastic_sweep, args=(alphas, USERS, BENCH_SEED), rounds=1, iterations=1
    )
    text = format_series(
        "Elastic-net alpha sweep (baseline MSE %.4g)" % baseline,
        "alpha",
        ("mse",),
        rows,
    )
    record_artefact("ext_elastic_net", text)
    # Every alpha beats the raw aggregation in the high-noise regime.
    for row in rows:
        assert row.values["mse"] < baseline


def _allocation_study(users, seed):
    rng = np.random.default_rng(seed)
    d, eps, n_signal = 50, 1.0, 5
    data = gaussian_dataset(users, d, high_fraction=n_signal / d, rng=rng)
    truth = true_mean(data)
    important = np.argsort(np.abs(truth))[-n_signal:]
    mech = get_mechanism("laplace")
    rows = []
    for label, strategy in (
        ("uniform", UniformAllocation()),
        ("signal_proportional", SignalProportionalAllocation(truth)),
    ):
        errs_important, errs_total = [], []
        for _ in range(4):
            theta, _ = allocated_pipeline_run(mech, data, eps, strategy, rng=rng)
            errs_important.append(
                float(np.mean((theta[important] - truth[important]) ** 2))
            )
            errs_total.append(mse(theta, truth))
        rows.append(
            (label, float(np.mean(errs_important)), float(np.mean(errs_total)))
        )
    return rows


def test_budget_allocation(benchmark, record_artefact):
    rows = benchmark.pedantic(
        _allocation_study, args=(USERS, BENCH_SEED), rounds=1, iterations=1
    )
    lines = ["# Budget allocation: uniform vs signal-proportional",
             "strategy\tmse_signal_dims\tmse_all_dims"]
    for label, important, total in rows:
        lines.append("%s\t%.4g\t%.4g" % (label, important, total))
    record_artefact("ext_allocation", "\n".join(lines))

    uniform, weighted = rows[0], rows[1]
    # Weighted allocation buys the prioritized dimensions...
    assert weighted[1] < uniform[1]
    # ...by spending budget the uniform strategy gave the rest.
    assert weighted[2] > uniform[2] * 0.5


def _setvalued_study(users, seed):
    rng = np.random.default_rng(seed)
    n_items = 24
    sets = [
        list(rng.choice(n_items, size=int(rng.integers(1, 4)), replace=False))
        for _ in range(users)
    ]
    truth = item_frequencies(sets, n_items)
    rows = []
    for eps in (1.0, 2.0, 4.0):
        ps = PaddingAndSampling(epsilon=eps, n_items=n_items, padding_length=3)
        estimate = ps.run(sets, rng)
        rows.append(
            SeriesRow(
                x=eps,
                values={"mse": float(np.mean((estimate.best() - truth) ** 2))},
            )
        )
    return rows


def test_setvalued(benchmark, record_artefact):
    rows = benchmark.pedantic(
        _setvalued_study, args=(USERS, BENCH_SEED), rounds=1, iterations=1
    )
    record_artefact(
        "ext_setvalued",
        format_series("Set-valued padding-and-sampling", "epsilon", ("mse",), rows),
    )
    series = [row.values["mse"] for row in rows]
    assert series[-1] < series[0]
    assert series[-1] < 1e-3


def _variance_study(users, seed):
    rng = np.random.default_rng(seed)
    d, eps = 100, 0.4
    data = rng.uniform(-1.0, 1.0, size=(users, d))
    truth = true_variance(data)
    plain = VarianceEstimationPipeline(
        get_mechanism("laplace"), epsilon=eps, dimensions=d
    ).run(data, rng=seed)
    enhanced = VarianceEstimationPipeline(
        get_mechanism("laplace"),
        epsilon=eps,
        dimensions=d,
        recalibrator=Recalibrator(norm="l2"),
    ).run(data, rng=seed)
    return (
        float(np.mean((plain.variance - truth) ** 2)),
        float(np.mean((enhanced.variance - truth) ** 2)),
    )


def test_variance_estimation(benchmark, record_artefact):
    plain, enhanced = benchmark.pedantic(
        _variance_study, args=(USERS, BENCH_SEED), rounds=1, iterations=1
    )
    record_artefact(
        "ext_variance",
        "# Two-phase variance estimation (d=100, eps=0.4)\n"
        "plain\t%.4g\nhdr4me_l2\t%.4g" % (plain, enhanced),
    )
    assert enhanced < plain
