"""Perturbation throughput of every mechanism (engineering benchmark).

Not a paper artefact — this is the benchmark that keeps the vectorized
samplers honest: each mechanism perturbs a 500k-value batch and
pytest-benchmark reports values/second. A regression here (e.g. an
accidental Python-level loop) multiplies every Fig. 4/5 regeneration
time, so the bench also asserts a conservative throughput floor.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.mechanisms import available_mechanisms, get_mechanism
from bench_config import BENCH_SEED

BATCH = 500_000
EPSILON = 1.0
#: Conservative floor (values/second) — real numbers are ~10-100x higher.
MIN_THROUGHPUT = 1e5


@pytest.mark.parametrize("name", sorted(available_mechanisms()))
def test_perturb_throughput(benchmark, name):
    mechanism = get_mechanism(name)
    lo, hi = mechanism.input_domain
    rng = np.random.default_rng(BENCH_SEED)
    values = rng.uniform(lo, hi, size=BATCH)

    out = benchmark(mechanism.perturb, values, EPSILON, rng)
    assert out.shape == values.shape
    seconds = benchmark.stats.stats.mean
    assert BATCH / seconds > MIN_THROUGHPUT, (
        "%s perturbs only %.0f values/s" % (name, BATCH / seconds)
    )
