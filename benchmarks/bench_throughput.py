"""Perturbation and ingestion throughput (engineering benchmark).

Not a paper artefact — these are the benchmarks that keep the hot paths
honest. Two families:

* **perturbation**: each mechanism perturbs a 500k-value batch and
  pytest-benchmark reports values/second. A regression here (e.g. an
  accidental Python-level loop) multiplies every Fig. 4/5 regeneration
  time, so the bench asserts a conservative throughput floor.
* **wire ingestion**: the full distributed path — encode a report batch
  under its contract, decode + verify it, fan it over a
  :class:`~repro.session.ShardedServer` (1, 2 and 4 shards) and read the
  merged estimate. Reports/second land in
  ``benchmarks/results/wire_throughput.json`` as a machine-readable
  record for the performance trajectory across PRs.
* **socket ingestion**: the same workload end-to-end over localhost TCP
  — concurrent :class:`~repro.transport.AsyncReportSender` clients
  handshake a :func:`~repro.transport.serve_collection` gateway, ship
  length-prefixed frames through the acked/backpressured path, and the
  gateway drains-and-merges. Frames/second, MB/second and the wire-v2
  bytes/report (against the dense v1 encoding of the same batches,
  asserted >= 4x smaller) land in the same JSON record under
  ``"socket"``.
* **client reporting**: :meth:`~repro.session.LDPClient.report_batch`
  perturbing one million users per protocol (piecewise, duchi, oue,
  olh, grr) — the device-side rate that bounds simulation-driven
  experiments; reports/second per protocol land under ``"client"``.
* **checkpoint stores**: a full round checkpoint (the workload's
  aggregation snapshot plus sender watermarks) is saved and recovered
  through each :mod:`repro.storage` backend. Round-trips/second and
  MB/second per backend land in the same JSON record under
  ``"checkpoint"`` — the cost of ``--checkpoint-every 1`` durability is
  a number, not a guess.
* **federation**: the upstream hop of the hierarchical tier — edges
  push the workload's full cumulative state to a
  :class:`~repro.federation.RootAggregator` over localhost TCP
  (handshake, CRC-sealed encode, root-side validate + fold, merged
  estimate). States/second, upstream MB/second, and the bytes of a
  steady-state *delta* push (one batch of growth) next to the full
  snapshot land under ``"federation"``, sizing how often
  ``--push-every`` can fire before the push hop dominates the round.

The socket bench also runs one *instrumented* round and records the
gateway's telemetry snapshot (queue-depth occupancy, backpressure
stalls, ack/fold latency means) under ``"telemetry"``, so saturation
numbers ride the performance trajectory alongside the throughput.
"""

from __future__ import annotations

import asyncio
import json

import numpy as np
import pytest

from repro.experiments.collection import mixed_schema
from repro.federation import (
    StatePusher,
    encode_state_push,
    serve_root,
    state_dict_delta,
)
from repro.mechanisms import available_mechanisms, get_mechanism
from repro.session import (
    CategoricalAttribute,
    LDPClient,
    NumericAttribute,
    Schema,
    ShardedServer,
)
from repro.wire import encode_batch
from repro.storage import (
    encode_document,
    open_store,
    round_checkpoint_document,
)
from repro.telemetry import MetricsRegistry
from repro.transport import AsyncReportSender, serve_collection
from bench_config import BENCH_SEED

BATCH = 500_000
EPSILON = 1.0
#: Conservative floor (values/second) — real numbers are ~10-100x higher.
MIN_THROUGHPUT = 1e5

#: Wire-path shape: enough users that codec + ingest dominate fixture
#: noise, small enough for laptop-seconds runs.
WIRE_USERS = 20_000
WIRE_BATCHES = 8
WIRE_NUMERIC_DIMS = 4
WIRE_CATEGORIES = 16
WIRE_SHARD_COUNTS = (1, 2, 4)
#: Conservative floor for encode→decode→sharded-ingest (reports/second).
MIN_INGEST_THROUGHPUT = 2e4


@pytest.mark.parametrize("name", sorted(available_mechanisms()))
def test_perturb_throughput(benchmark, name):
    mechanism = get_mechanism(name)
    lo, hi = mechanism.input_domain
    rng = np.random.default_rng(BENCH_SEED)
    values = rng.uniform(lo, hi, size=BATCH)

    out = benchmark(mechanism.perturb, values, EPSILON, rng)
    assert out.shape == values.shape
    seconds = benchmark.stats.stats.mean
    assert BATCH / seconds > MIN_THROUGHPUT, (
        "%s perturbs only %.0f values/s" % (name, BATCH / seconds)
    )


# --------------------------------------------------------------------------
# Wire path: encode → decode → sharded ingest → merged estimate
# --------------------------------------------------------------------------


def _wire_workload():
    """Mixed schema + pre-perturbed report batches (perturbation excluded)."""
    schema = mixed_schema(WIRE_NUMERIC_DIMS, WIRE_CATEGORIES)
    rng = np.random.default_rng(BENCH_SEED)
    records = np.column_stack(
        [
            rng.uniform(-1.0, 1.0, size=(WIRE_USERS, WIRE_NUMERIC_DIMS)),
            rng.integers(0, WIRE_CATEGORIES, size=WIRE_USERS)[:, None],
        ]
    )
    client = LDPClient(schema, EPSILON, protocols={"category": "oue"})
    batches = [
        client.report_batch(chunk, rng)
        for chunk in np.array_split(records, WIRE_BATCHES)
    ]
    return schema, client, batches


def _record_wire_result(
    results_dir, key, payload: dict, section: str = "results"
) -> None:
    """Merge one measurement into the machine-readable record."""
    path = results_dir / "wire_throughput.json"
    workload = {
        "users": WIRE_USERS,
        "batches": WIRE_BATCHES,
        "numeric_dims": WIRE_NUMERIC_DIMS,
        "n_categories": WIRE_CATEGORIES,
        "reports": WIRE_USERS * (WIRE_NUMERIC_DIMS + 1),
    }
    document = {}
    if path.exists():
        document = json.loads(path.read_text())
    if document.get("workload") != workload:
        document = {}  # shape changed: stale numbers would mislead
    # One record, two benchmark families: "results" holds the in-process
    # wire path (encode→decode→sharded ingest), "socket" the end-to-end
    # TCP path — label the file by what distinguishes the sections.
    document["benchmark"] = "wire_throughput"
    document["sections"] = {
        "results": "wire_sharded_ingest",
        "socket": "socket_ingest",
        "checkpoint": "checkpoint_store",
        "telemetry": "socket_round_telemetry",
        "federation": "federation_state_push",
        "client": "client_report_batch",
    }
    document["workload"] = workload
    document.setdefault(section, {})[str(key)] = payload
    path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")


@pytest.mark.parametrize("shards", WIRE_SHARD_COUNTS)
def test_wire_sharded_ingest_throughput(benchmark, results_dir, shards):
    schema, client, batches = _wire_workload()
    total_reports = WIRE_USERS * schema.dimensions

    def encode_decode_ingest():
        server = ShardedServer(
            schema, EPSILON, protocols={"category": "oue"}, shards=shards
        )
        for batch in batches:
            server.ingest_encoded(client.encode(batch))
        return server.estimate()

    estimate = benchmark(encode_decode_ingest)
    assert estimate.users == WIRE_USERS
    seconds = benchmark.stats.stats.mean
    throughput = total_reports / seconds
    assert throughput > MIN_INGEST_THROUGHPUT, (
        "wire path moves only %.0f reports/s over %d shards"
        % (throughput, shards)
    )
    _record_wire_result(
        results_dir,
        shards,
        {
            "seconds_mean": seconds,
            "reports_per_second": throughput,
            "users_per_second": WIRE_USERS / seconds,
        },
    )


# --------------------------------------------------------------------------
# Socket path: handshake → framed sends → gateway validate/route → drain
# --------------------------------------------------------------------------

#: Concurrent senders sharing the workload's frames over localhost TCP.
SOCKET_CLIENTS = 4
SOCKET_SHARDS = 2
SOCKET_QUEUE_DEPTH = 4
#: Conservative floor for the end-to-end socket round (reports/second):
#: everything the wire path does, plus TCP and per-frame ack round trips.
MIN_SOCKET_THROUGHPUT = 1e4


def test_socket_ingest_throughput(benchmark, results_dir):
    schema, client, batches = _wire_workload()
    frames = [client.encode(batch) for batch in batches]
    per_client = [frames[i::SOCKET_CLIENTS] for i in range(SOCKET_CLIENTS)]
    total_reports = WIRE_USERS * schema.dimensions
    total_bytes = sum(len(frame) for frame in frames)
    # The same batches under wire v1 (dense float payloads): the v2
    # packed/narrowed families must keep this OUE-heavy workload at
    # least 4x smaller on the wire, or the codec regressed.
    v1_total_bytes = sum(
        len(encode_batch(batch, client.contract, version=1))
        for batch in batches
    )
    assert v1_total_bytes >= 4 * total_bytes, (
        "wire v2 compresses this workload only %.2fx over v1"
        % (v1_total_bytes / total_bytes)
    )

    def socket_round(metrics=None):
        async def run():
            server = ShardedServer(
                schema,
                EPSILON,
                protocols={"category": "oue"},
                shards=SOCKET_SHARDS,
            )
            gateway = await serve_collection(
                server,
                "127.0.0.1",
                0,
                queue_depth=SOCKET_QUEUE_DEPTH,
                metrics=metrics,
            )
            contract = server.contract

            async def one_client(own_frames):
                sender = await AsyncReportSender.connect(
                    "127.0.0.1", gateway.port, contract
                )
                async with sender:
                    for frame in own_frames:
                        await sender.send_encoded(frame)

            await asyncio.gather(
                *(one_client(own) for own in per_client)
            )
            await gateway.stop()
            return gateway

        return asyncio.run(run())

    gateway = benchmark(socket_round)
    assert gateway.estimate().users == WIRE_USERS
    seconds = benchmark.stats.stats.mean
    throughput = total_reports / seconds
    assert throughput > MIN_SOCKET_THROUGHPUT, (
        "socket path moves only %.0f reports/s end to end" % throughput
    )
    _record_wire_result(
        results_dir,
        SOCKET_SHARDS,
        {
            "clients": SOCKET_CLIENTS,
            "queue_depth": SOCKET_QUEUE_DEPTH,
            "seconds_mean": seconds,
            "frames_per_second": len(frames) / seconds,
            "mb_per_second": total_bytes / seconds / 1e6,
            "reports_per_second": throughput,
            "bytes_per_report": total_bytes / total_reports,
            "v1_bytes_per_report": v1_total_bytes / total_reports,
            "compression_vs_v1": v1_total_bytes / total_bytes,
        },
        section="socket",
    )

    # One more round, instrumented: queue-depth occupancy, backpressure
    # stalls and latency distributions ride the perf record, so a future
    # regression comes with the saturation numbers attached.
    snapshot = socket_round(MetricsRegistry()).stats_snapshot()
    counters = snapshot["counters"]
    assert counters["frames_accepted"] == len(frames)
    assert counters["rejections_total"] == 0
    families = snapshot["metrics"]
    queues = families["gateway_queue_depth"]["values"]
    ack = families["gateway_ack_latency_seconds"]["values"][""]
    fold = families["gateway_fold_seconds"]["values"][""]
    _record_wire_result(
        results_dir,
        SOCKET_SHARDS,
        {
            "counters": counters,
            "queue_depth_time_weighted_mean": {
                labels: round(value["time_weighted_mean"], 6)
                for labels, value in sorted(queues.items())
            },
            "queue_depth_max": {
                labels: value["max"] for labels, value in sorted(queues.items())
            },
            "ack_latency_seconds_mean": ack["mean"],
            "fold_seconds_mean": fold["mean"],
            "backpressure_stalls": families[
                "gateway_backpressure_stalls_total"
            ]["values"][""],
            "backpressure_stall_seconds": families[
                "gateway_backpressure_stall_seconds_total"
            ]["values"][""],
        },
        section="telemetry",
    )


# --------------------------------------------------------------------------
# Checkpoint stores: round checkpoint save → recover, per backend
# --------------------------------------------------------------------------

CHECKPOINT_BACKENDS = ("file", "sqlite", "segments")
#: Conservative floor (write+recover round-trips/second): a gateway at
#: ``--checkpoint-every 1`` pays one write per acked frame, so a backend
#: slower than this would dominate the socket path's frame rate.
MIN_CHECKPOINT_ROUNDTRIPS = 5.0


@pytest.mark.parametrize("backend", CHECKPOINT_BACKENDS)
def test_checkpoint_store_throughput(benchmark, results_dir, tmp_path, backend):
    schema, client, batches = _wire_workload()
    server = ShardedServer(
        schema, EPSILON, protocols={"category": "oue"}, shards=SOCKET_SHARDS
    )
    for batch in batches:
        server.ingest_encoded(client.encode(batch))
    document = round_checkpoint_document(
        server.state_dict(),
        {b"\x01" * 16: WIRE_BATCHES},
        WIRE_BATCHES,
    )
    checkpoint_bytes = len(encode_document(document))
    uri = {
        "file": "file://%s" % (tmp_path / "bench.json"),
        "sqlite": "sqlite://%s" % (tmp_path / "bench.db"),
        "segments": "segments://%s" % (tmp_path / "bench-segments"),
    }[backend]

    with open_store(uri) as store:

        def save_and_recover():
            store.save(document)
            return store.recover()

        recovered = benchmark(save_and_recover)
    assert recovered["frames"] == WIRE_BATCHES
    seconds = benchmark.stats.stats.mean
    roundtrips = 1.0 / seconds
    assert roundtrips > MIN_CHECKPOINT_ROUNDTRIPS, (
        "%s store manages only %.1f checkpoint round-trips/s"
        % (backend, roundtrips)
    )
    _record_wire_result(
        results_dir,
        backend,
        {
            "seconds_mean": seconds,
            "roundtrips_per_second": roundtrips,
            "checkpoint_bytes": checkpoint_bytes,
            "mb_per_second": checkpoint_bytes / seconds / 1e6,
        },
        section="checkpoint",
    )


# --------------------------------------------------------------------------
# Federation: edges push cumulative state upstream, root validates + folds
# --------------------------------------------------------------------------

FEDERATION_EDGES = 3
#: Conservative floor (full state pushes/second across the topology):
#: encode + CRC + TCP + root-side decode, validate-restore and fold of
#: the whole workload's snapshot. An edge at ``--push-every N`` pays one
#: of these per N accepted frames.
MIN_PUSH_THROUGHPUT = 1.0


def test_federation_push_throughput(benchmark, results_dir):
    schema, client, batches = _wire_workload()
    server = ShardedServer(
        schema, EPSILON, protocols={"category": "oue"}, shards=SOCKET_SHARDS
    )
    for batch in batches[:-1]:
        server.ingest_encoded(client.encode(batch))
    base_state = server.state_dict()
    server.ingest_encoded(client.encode(batches[-1]))
    state = server.state_dict()
    push_bytes = len(encode_state_push(state))
    # What a steady-state edge ships instead of the full snapshot: the
    # exact accumulator delta covering just the final batch.
    delta_bytes = len(
        encode_state_push(
            state_dict_delta(state, base_state), kind="delta", base_epoch=1
        )
    )

    def federated_round():
        async def run():
            root = await serve_root(
                schema, EPSILON, protocols={"category": "oue"}
            )
            contract = server.contract

            async def one_edge(number):
                pusher = await StatePusher.connect(
                    "127.0.0.1", root.port, contract, bytes([number]) * 16
                )
                async with pusher:
                    await pusher.push(state)

            await asyncio.gather(
                *(one_edge(n + 1) for n in range(FEDERATION_EDGES))
            )
            await root.stop()
            return root

        return asyncio.run(run())

    root = benchmark(federated_round)
    assert root.pushes_accepted == FEDERATION_EDGES
    assert root.pushes_rejected == 0
    # each edge pushed the same cumulative snapshot: the merge is additive
    assert root.estimate().users == FEDERATION_EDGES * WIRE_USERS
    seconds = benchmark.stats.stats.mean
    states_per_second = FEDERATION_EDGES / seconds
    assert states_per_second > MIN_PUSH_THROUGHPUT, (
        "federation hop folds only %.2f state pushes/s" % states_per_second
    )
    _record_wire_result(
        results_dir,
        FEDERATION_EDGES,
        {
            "edges": FEDERATION_EDGES,
            "push_bytes": push_bytes,
            "delta_push_bytes": delta_bytes,
            "seconds_mean": seconds,
            "states_per_second": states_per_second,
            "upstream_mb_per_second": (
                FEDERATION_EDGES * push_bytes / seconds / 1e6
            ),
        },
        section="federation",
    )


# --------------------------------------------------------------------------
# Client side: LDPClient.report_batch at population scale, per protocol
# --------------------------------------------------------------------------

CLIENT_USERS = 1_000_000
CLIENT_CATEGORIES = 16
CLIENT_PROTOCOLS = ("piecewise", "duchi", "oue", "olh", "grr")
#: Conservative floor (reports/second) for one attribute's perturbation
#: through the full client path (validate → privatize → batch).
MIN_CLIENT_THROUGHPUT = 5e4


@pytest.mark.parametrize("protocol", CLIENT_PROTOCOLS)
def test_client_report_batch_throughput(benchmark, results_dir, protocol):
    """Reports/second a single client process can produce per protocol.

    The device-side half of the pipeline: the socket and federation
    sections measure how fast the collector folds reports, this one
    measures how fast :meth:`LDPClient.report_batch` can make them — the
    number that bounds simulation-driven experiments at paper scale.
    """
    numeric = protocol in ("piecewise", "duchi")
    if numeric:
        schema = Schema([NumericAttribute("value")])
    else:
        schema = Schema(
            [CategoricalAttribute("label", n_categories=CLIENT_CATEGORIES)]
        )
    client = LDPClient(schema, EPSILON, protocols={schema.names[0]: protocol})
    rng = np.random.default_rng(BENCH_SEED)
    if numeric:
        records = rng.uniform(-1.0, 1.0, size=(CLIENT_USERS, 1))
    else:
        records = rng.integers(
            0, CLIENT_CATEGORIES, size=(CLIENT_USERS, 1)
        ).astype(np.float64)

    batch = benchmark(client.report_batch, records, rng)
    assert batch.users == CLIENT_USERS
    seconds = benchmark.stats.stats.mean
    throughput = CLIENT_USERS / seconds
    assert throughput > MIN_CLIENT_THROUGHPUT, (
        "%s client produces only %.0f reports/s" % (protocol, throughput)
    )
    _record_wire_result(
        results_dir,
        protocol,
        {
            "users": CLIENT_USERS,
            "seconds_mean": seconds,
            "reports_per_second": throughput,
        },
        section="client",
    )
