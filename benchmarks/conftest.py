"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one paper artefact at a scaled-down (but
shape-preserving) configuration, prints the same rows/series the paper
reports, and archives them under ``benchmarks/results/`` so a full
``pytest benchmarks/ --benchmark-only`` run leaves the complete set of
regenerated tables/figures on disk.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: Seed shared by all benchmarks (reruns are reproducible).
BENCH_SEED = 2022


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    """Directory where regenerated artefacts are archived."""
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture()
def record_artefact(results_dir):
    """Callable(name, text): print an artefact and archive it."""

    def _record(name: str, text: str) -> None:
        print()
        print(text)
        (results_dir / ("%s.txt" % name)).write_text(text + "\n")

    return _record
