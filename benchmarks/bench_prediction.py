"""Framework MSE prediction vs experiment, over the full mechanism grid.

Section III-B's promise — "the theoretical analysis … can predict how MSE
varies without conducting any experiment" — made quantitative: for every
registered [−1, 1] mechanism on two datasets, the Theorem 1 prediction
``Σ_j (δ_j² + σ_j²)/d`` is compared against measured collection rounds.

Shape asserted: every measured/predicted ratio lies within [0.6, 1.6]
(5 repeats at n = 15,000 leave real simulation noise), and the *ordering*
of mechanisms by predicted MSE matches the measured ordering, which is
what the experiment-free benchmarking relies on.
"""

from __future__ import annotations

from repro.experiments import run_mse_prediction
from bench_config import BENCH_SEED

USERS = 15_000
DIMENSIONS = 50
REPEATS = 5


def test_prediction_grid(benchmark, record_artefact):
    result = benchmark.pedantic(
        run_mse_prediction,
        kwargs=dict(
            users=USERS,
            dimensions=DIMENSIONS,
            repeats=REPEATS,
            rng=BENCH_SEED,
        ),
        rounds=1,
        iterations=1,
    )
    record_artefact("prediction_grid", result.format())

    for row in result.rows:
        assert 0.6 < row.ratio < 1.6, (row.dataset, row.mechanism, row.ratio)

    # Ordering check per dataset: sorting by prediction equals sorting by
    # measurement up to near-ties (< 15% apart are allowed to swap).
    by_dataset = {}
    for row in result.rows:
        by_dataset.setdefault(row.dataset, []).append(row)
    for rows in by_dataset.values():
        predicted_order = sorted(rows, key=lambda r: r.predicted)
        for earlier, later in zip(predicted_order, predicted_order[1:]):
            if later.predicted > 1.15 * earlier.predicted:
                assert later.measured > earlier.measured
