"""Shared configuration for the benchmark harness."""

#: Seed shared by all benchmarks (reruns are reproducible).
BENCH_SEED = 2022
