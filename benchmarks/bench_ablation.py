"""Ablations of HDR4ME's design choices (Section V discussion).

Three studies:
* envelope confidence behind the λ* "sup";
* the harmful regime the paper warns about ("if the number of dimensions
  is not high or the collective privacy budget is rather large … our
  re-calibration can be harmful");
* equivalence of the one-off solvers (Eq. 34/42) with converged PGD.
"""

from __future__ import annotations

from repro.experiments import (
    run_confidence_ablation,
    run_harmful_regime,
    run_solver_equivalence,
)
from bench_config import BENCH_SEED

USERS = 15_000


def test_confidence_ablation(benchmark, record_artefact):
    result = benchmark.pedantic(
        run_confidence_ablation,
        kwargs=dict(users=USERS, rng=BENCH_SEED),
        rounds=1,
        iterations=1,
    )
    record_artefact("ablation_confidence", result.format())
    # Every confidence level beats the unregularized baseline here
    # (d = 100, eps = 0.4 is deep inside the high-noise regime).
    for row in result.rows:
        assert row.values["l1"] < result.baseline_mse
        assert row.values["l2"] < result.baseline_mse


def test_harmful_regime(benchmark, record_artefact):
    result = benchmark.pedantic(
        run_harmful_regime,
        kwargs=dict(users=USERS, rng=BENCH_SEED),
        rounds=1,
        iterations=1,
    )
    record_artefact("ablation_harmful", result.format())
    # Helps in the high-d / small-eps corner...
    assert result.ratios[-1, 0] < 1.0
    # ...and is harmful (or at best neutral) in the low-d / large-eps corner.
    assert result.ratios[0, -1] > 0.99


def test_solver_equivalence(benchmark, record_artefact):
    result = benchmark.pedantic(
        run_solver_equivalence, kwargs=dict(rng=BENCH_SEED), rounds=1, iterations=1
    )
    record_artefact("ablation_solver", result.format())
    assert result.max_divergence_l1 < 1e-9
    assert result.max_divergence_l2 < 1e-9
    # "One-off, non-iterative": PGD converges immediately on the quadratic
    # loss (one productive step + the convergence check).
    assert result.iterations_l1 <= 2
    assert result.iterations_l2 <= 2
