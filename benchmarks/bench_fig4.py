"""Fig. 4 (a)–(l) — MSE vs privacy budget, twelve panels.

Paper setting: m = d (every user reports every dimension), 100 repetitions,
ε ∈ {0.1, …, 3.2} (Laplace/Piecewise) or {0.1, …, 5000} (Square wave), on
Gaussian (n=100k, d=100), Poisson (n=150k, d=300), Uniform (n=120k, d=500)
and COV-19 (n=150k, d=750).

Scaled-down to n = 10,000–15,000 users and 2 repetitions; the relevant
shape driver is the per-dimension budget ε/d, which is preserved exactly.

Shapes asserted (the paper's headline claims):
* Laplace/Piecewise: both L1 and L2 beat the baseline at the smallest ε on
  every dataset, by a large factor;
* the baseline MSE decreases as ε grows;
* Square wave: its deviations sit below the Lemma 4/5 thresholds, so
  re-calibration brings no such gain (L1 stays near the baseline).
"""

from __future__ import annotations

import pytest

from repro.experiments import run_mse_sweep
from bench_config import BENCH_SEED

#: Scaled-down user counts per dataset (dimensions stay at paper values).
USERS = {"gaussian": 15_000, "poisson": 12_000, "uniform": 10_000, "cov19": 10_000}
REPEATS = 2

PANELS = [
    ("gaussian", "laplace"),
    ("gaussian", "piecewise"),
    ("gaussian", "square_wave"),
    ("poisson", "laplace"),
    ("poisson", "piecewise"),
    ("poisson", "square_wave"),
    ("uniform", "laplace"),
    ("uniform", "piecewise"),
    ("uniform", "square_wave"),
    ("cov19", "laplace"),
    ("cov19", "piecewise"),
    ("cov19", "square_wave"),
]


@pytest.mark.parametrize("dataset,mechanism", PANELS)
def test_fig4_panel(benchmark, record_artefact, dataset, mechanism):
    result = benchmark.pedantic(
        run_mse_sweep,
        kwargs=dict(
            dataset=dataset,
            mechanism=mechanism,
            users=USERS[dataset],
            repeats=REPEATS,
            rng=BENCH_SEED,
        ),
        rounds=1,
        iterations=1,
    )
    record_artefact("fig4_%s_%s" % (dataset, mechanism), result.format())

    baseline = result.series("baseline")
    l1 = result.series("l1")
    l2 = result.series("l2")

    # More budget -> better baseline (monotone up to simulation noise).
    assert baseline[-1] < baseline[0]

    if mechanism in ("laplace", "piecewise"):
        # HDR4ME's headline: large gains at the smallest budget.
        assert l1[0] < 0.25 * baseline[0]
        assert l2[0] < 0.25 * baseline[0]
        # And no catastrophic regression anywhere on the grid.
        assert (l1 <= baseline * 1.5).all()
    else:
        # Square wave: deviations below the improvement thresholds;
        # re-calibration gives no large gain (and may hurt slightly).
        assert l1[0] > 0.05 * baseline[0] or baseline[0] < 1e-3
