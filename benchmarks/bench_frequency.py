"""Section V-C — the frequency-estimation extension of HDR4ME.

The paper proves the reduction (categorical → histogram encoding → mean
estimation, ε/2m per entry) but tabulates no dedicated experiment; this
benchmark provides one on a Zipf-distributed categorical attribute.

Shape asserted: the baseline improves with budget, and the re-calibrated
estimates remain within a sane factor of the baseline at every ε — at a
single categorical dimension the Lemma 4/5 thresholds are far from met, so
HDR4ME is *not* expected to help (mirroring the paper's Square-wave
caution); the benchmark documents that honestly.
"""

from __future__ import annotations

import pytest

from repro.experiments import run_frequency_experiment
from bench_config import BENCH_SEED

USERS = 15_000
REPEATS = 2


@pytest.mark.parametrize("mechanism", ["piecewise", "square_wave", "laplace"])
def test_frequency(benchmark, record_artefact, mechanism):
    result = benchmark.pedantic(
        run_frequency_experiment,
        kwargs=dict(
            mechanism=mechanism, users=USERS, repeats=REPEATS, rng=BENCH_SEED
        ),
        rounds=1,
        iterations=1,
    )
    record_artefact("frequency_%s" % mechanism, result.format())

    baseline = [row.values["baseline"] for row in result.rows]
    # More budget -> better baseline frequencies.
    assert baseline[-1] < baseline[0]
    # Post-processing keeps every variant on the simplex, so nothing can
    # explode: L2 stays within a small factor of the baseline throughout.
    for row in result.rows:
        assert row.values["l2"] < 25 * row.values["baseline"] + 1e-4
