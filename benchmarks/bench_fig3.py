"""Fig. 3 (a–b) — CLT prediction vs experiment for the IV-C case study.

Paper setting: the discretized Uniform data of the case study
(values {0.1, …, 1.0}, r = 10,000 reports, ε/m = 0.001), Piecewise and
Square wave, 1,000 repetitions. The analytical pdfs are Eq. 16
(N(0, 533.210) for Piecewise) and Eq. 20 (N(−0.049, 3.365e−5) for Square).

Scaled-down to 400 repetitions. Shape asserted: the models carry the
paper's constants and the empirical pdfs match them.
"""

from __future__ import annotations

from repro.experiments import run_fig3
from bench_config import BENCH_SEED

REPEATS = 400


def test_fig3(benchmark, record_artefact):
    results = benchmark.pedantic(
        run_fig3, kwargs=dict(repeats=REPEATS, rng=BENCH_SEED), rounds=1, iterations=1
    )
    piecewise, square = results
    record_artefact("fig3_piecewise", piecewise.format())
    record_artefact("fig3_square", square.format())

    # Eq. 16: Piecewise deviation ~ N(0, 533.210).
    assert abs(piecewise.model.delta) < 1e-9
    assert abs(piecewise.model.sigma**2 - 533.210) < 5.0

    # Eq. 20: Square deviation ~ N(-0.049, 3.365e-5).
    assert abs(square.model.delta - (-0.049)) < 3e-3
    assert abs(square.model.sigma**2 - 3.365e-5) < 5e-6

    for result in results:
        assert result.fit.mean_error < 0.35 * result.model.sigma
        assert 0.85 < result.fit.std_ratio < 1.15
        assert result.fit.ks_statistic < 0.1
