"""Frequency oracles (GRR / OUE / OLH) vs the paper's histogram route.

An extension benchmark: Section V-C estimates frequencies by perturbing
histogram-encoded entries with a numeric mechanism at ε/2m; the purpose-
built oracles of Wang et al. [37] are the natural comparators. The bench
measures the frequency-vector MSE of all four routes on a Zipf attribute
over a budget grid, plus the classic GRR↔OUE domain-size crossover.

Shapes asserted: every route's MSE falls with ε; OUE/OLH beat GRR at a
large domain (v = 64); GRR wins at a tiny domain (v = 4).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments import zipf_categories
from repro.freq_oracles import get_oracle
from repro.hdr4me import FrequencyEstimator, true_frequencies
from repro.mechanisms import get_mechanism
from bench_config import BENCH_SEED

USERS = 20_000
EPSILONS = (0.5, 1.0, 2.0)


def _run_routes(v, users, epsilons, seed):
    rng = np.random.default_rng(seed)
    labels = zipf_categories(users, v, rng=rng)
    truth = true_frequencies(labels, v)
    rows = []
    for eps in epsilons:
        row = {"epsilon": eps}
        for name in ("grr", "oue", "olh"):
            oracle = get_oracle(name, eps, v)
            estimate = oracle.estimate(oracle.privatize(labels, rng))
            row[name] = float(np.mean((estimate - truth) ** 2))
        he = FrequencyEstimator(get_mechanism("piecewise"), eps)
        estimate = he.estimate(labels, v, rng).raw
        row["he_piecewise"] = float(np.mean((estimate - truth) ** 2))
        rows.append(row)
    return truth, rows


def _format(v, users, rows):
    labels = ("grr", "oue", "olh", "he_piecewise")
    lines = [
        "# Frequency-oracle comparison (n=%d, v=%d)" % (users, v),
        "epsilon\t" + "\t".join(labels),
    ]
    for row in rows:
        lines.append(
            "%g\t" % row["epsilon"]
            + "\t".join("%.3e" % row[label] for label in labels)
        )
    return "\n".join(lines)


def test_oracle_comparison_large_domain(benchmark, record_artefact):
    v = 64
    truth, rows = benchmark.pedantic(
        _run_routes,
        args=(v, USERS, EPSILONS, BENCH_SEED),
        rounds=1,
        iterations=1,
    )
    record_artefact("freq_oracles_v64", _format(v, USERS, rows))

    for name in ("grr", "oue", "olh", "he_piecewise"):
        series = [row[name] for row in rows]
        assert series[-1] < series[0]  # more budget -> better
    # Large domain: unary/hashing routes beat direct encoding.
    for row in rows:
        assert row["oue"] < row["grr"]
        assert row["olh"] < 2 * row["oue"] + 1e-6


def test_oracle_comparison_small_domain(benchmark, record_artefact):
    v = 4
    truth, rows = benchmark.pedantic(
        _run_routes,
        args=(v, USERS, (2.0,), BENCH_SEED),
        rounds=1,
        iterations=1,
    )
    record_artefact("freq_oracles_v4", _format(v, USERS, rows))
    # Tiny domain at generous budget: GRR is the right tool.
    assert rows[0]["grr"] < rows[0]["oue"]
