"""Empirical ε-LDP audit of every shipped mechanism (Definition 1).

Not a paper table, but the paper's Definition 1 made measurable: for each
registered mechanism the auditor samples the conditional output
distributions at the domain extremes and midpoint and estimates the
worst-case log density ratio, which must stay within ε (after the
per-bin sampling allowance). Also audits the analytical crossover finder
against the Table II winners.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import audit_mechanism
from repro.framework import (
    ValueDistribution,
    build_deviation_model,
    crossover_supremum,
)
from repro.mechanisms import available_mechanisms, get_mechanism
from bench_config import BENCH_SEED

EPSILON = 1.0
SAMPLES = 150_000


def _audit_all(seed):
    rng = np.random.default_rng(seed)
    results = {}
    for name in sorted(available_mechanisms()):
        results[name] = audit_mechanism(
            get_mechanism(name), EPSILON, samples=SAMPLES, rng=rng
        )
    return results


def test_audit_all_mechanisms(benchmark, record_artefact):
    results = benchmark.pedantic(
        _audit_all, args=(BENCH_SEED,), rounds=1, iterations=1
    )
    lines = [
        "# Empirical LDP audit at eps=%g (%d samples per input)"
        % (EPSILON, SAMPLES),
        "mechanism\tmax_log_ratio\tadjusted\tbins",
    ]
    for name, result in results.items():
        lines.append(
            "%s\t%.3f\t%.3f\t%d"
            % (name, result.max_log_ratio, result.max_adjusted_log_ratio,
               result.bins_scored)
        )
    record_artefact("audit", "\n".join(lines))

    for name, result in results.items():
        assert result.bins_scored > 0, name
        assert result.satisfied_with_slack(1.2), (
            name,
            result.max_adjusted_log_ratio,
        )


def test_case_study_crossover(benchmark, record_artefact):
    population = ValueDistribution.case_study()

    def _crossover():
        piecewise = build_deviation_model(
            get_mechanism("piecewise"), 0.001, 10_000, population
        )
        square = build_deviation_model(
            get_mechanism("square_wave_unit"), 0.001, 10_000, population
        )
        return crossover_supremum(piecewise, square)

    result = benchmark.pedantic(_crossover, rounds=1, iterations=1)
    record_artefact(
        "audit_crossover",
        "# Piecewise vs Square-wave supremum crossover (case study)\n"
        "crossover_xi\t%.4f\nsmall_xi_winner\t%s\nlarge_xi_winner\t%s"
        % (result.crossover, result.small_xi_winner, result.large_xi_winner),
    )
    # Table II's winners flip between 0.01 and 0.05.
    assert 0.01 < result.crossover < 0.05
