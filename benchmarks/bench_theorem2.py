"""Theorem 2 — Berry–Esseen approximation error of the CLT framework.

The paper's worked example: Laplace, r = 1,000 → bound ≈ 1.57% (their
ρ = 3λ³ reading) / ≈ 2.69% (the correct ρ = 6λ³); both are printed. The
sweep shows the claimed O(1/√r) decay, and an empirical check verifies the
*measured* Kolmogorov–Smirnov distance between simulated deviations and
the framework Gaussian sits below the bound.
"""

from __future__ import annotations

import math

from repro.experiments import run_convergence, worked_example
from bench_config import BENCH_SEED

REPORT_COUNTS = (100, 400, 1_600, 6_400)
EMPIRICAL_REPEATS = 300


def test_worked_example(benchmark, record_artefact):
    result = benchmark.pedantic(worked_example, rounds=1, iterations=1)
    record_artefact("theorem2_example", result.format())
    assert abs(result.paper_bound - 0.0157) < 5e-4
    assert abs(result.correct_bound - 0.0269) < 5e-4


def test_convergence_sweep(benchmark, record_artefact):
    result = benchmark.pedantic(
        run_convergence,
        kwargs=dict(
            report_counts=REPORT_COUNTS,
            empirical_repeats=EMPIRICAL_REPEATS,
            rng=BENCH_SEED,
        ),
        rounds=1,
        iterations=1,
    )
    record_artefact("theorem2_convergence", result.format())

    bounds = [row.values["bound"] for row in result.rows]
    # O(1/sqrt(r)): quadrupling r halves the bound.
    for previous, current in zip(bounds, bounds[1:]):
        assert abs(current / previous - 0.5) < 1e-9
    # The measured cdf distance respects the bound at every r, up to the
    # resolution of a 300-sample empirical cdf: by the DKW inequality the
    # KS statistic of matching samples stays below sqrt(ln(2/a)/(2n)) with
    # probability 1-a, which at a = 1e-3 is ~0.11 here.
    dkw = math.sqrt(math.log(2.0 / 1e-3) / (2.0 * EMPIRICAL_REPEATS))
    for row in result.rows:
        assert row.values["empirical_ks"] <= row.values["bound"] + dkw
